//! The headline scenario: the tenant front-end co-located with a
//! pipelined PPO training job on the same virtual cluster.
//!
//! Training runs first (it is deterministic), and its controller
//! timeline + HybridEngine transition spans are folded into a
//! [`CapacityProfile`]: while the actor generates, serving keeps a
//! configurable share of the engine; while update/prepare phases hold
//! the devices, the share shrinks; during train↔generation weight
//! transitions it drops to zero (the engine is mid-reshard). The
//! front-end then replays the same arrival schedule against that
//! profile and against a constant-1.0 serve-only baseline, and the
//! report pins how far the top-priority tenant's p99 TTFT is allowed
//! to drift between the two.

use hf_core::{Controller, TimelineEntry, WorkerLayout};
use hf_genserve::{GenConfig, GenError, GenServer};
use hf_nn::{LmConfig, TinyLm};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_rlhf::env::make_prompts;
use hf_rlhf::{ModelPlacement, PipelineConfig, PipelinedPpo, Placement, RlhfConfig, RlhfSystem};
use hf_simcluster::{ClusterSpec, CommCostModel, ResourcePool};
use hf_telemetry::{SpanRecord, Telemetry};

use crate::arrival::build_arrivals;
use crate::frontend::{self, CapacityProfile, ServeConfig, ServeReport};
use crate::tenant::TenantSpec;

/// Co-located training shape plus the capacity shares the front-end
/// keeps during each training phase.
#[derive(Debug, Clone)]
pub struct ColocateConfig {
    /// Devices per model pool (total GPUs = 4x this).
    pub per_model: usize,
    /// Per-model layout, `(pipeline, tensor, data)`.
    pub spec: (usize, usize, usize),
    /// Generation TP size on the actor.
    pub tg: usize,
    /// Prompt rows per training iteration.
    pub rows: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Generation chunks per iteration (pipelined driver).
    pub gen_chunks: usize,
    /// Front-end capacity share while the actor generates (rollout and
    /// serving share the generation engine).
    pub share_gen: f64,
    /// Front-end capacity share while training phases hold the devices.
    pub share_train: f64,
    /// Serving-time window (virtual seconds) the training job's
    /// timeline is stretched onto. The simulated tiny models train in
    /// milliseconds; real RLHF jobs hold devices for whole serving
    /// epochs, so the profile is rescaled to this window before the
    /// front-end replays against it.
    pub train_window_s: f64,
    /// Minimum width (serving seconds) of each HybridEngine transition
    /// blackout. The pipelined driver hides transition cost behind the
    /// train tail, but the serving engine is still unavailable while
    /// weights reshard — each transition instant becomes a
    /// zero-capacity window at least this wide.
    pub transition_floor_s: f64,
}

impl Default for ColocateConfig {
    fn default() -> Self {
        ColocateConfig {
            per_model: 2,
            spec: (1, 1, 2),
            tg: 1,
            rows: 8,
            iterations: 4,
            gen_chunks: 2,
            share_gen: 0.75,
            share_train: 0.5,
            train_window_s: 8.0,
            transition_floor_s: 0.02,
        }
    }
}

/// What the co-located training job accomplished.
#[derive(Debug, Clone)]
pub struct TrainSummary {
    /// Training batches completed (including the flushed tail).
    pub iterations: u64,
    /// Controller virtual seconds the whole job took.
    pub virtual_seconds: f64,
    /// Virtual seconds spent inside HybridEngine weight transitions
    /// (serving capacity is zero there).
    pub transition_stall_s: f64,
    /// Mean reward-model score across iterations.
    pub mean_score: f64,
    /// Mean PPO surrogate loss across iterations.
    pub mean_actor_loss: f64,
}

/// Outcome of one co-located run: the same arrival schedule served
/// under the training-derived capacity profile and at full capacity.
#[derive(Debug, Clone)]
pub struct ColocatedRun {
    /// Front-end report under the training capacity profile.
    pub colocated: ServeReport,
    /// Front-end report at constant full capacity (baseline).
    pub serve_only: ServeReport,
    /// The training job's own progress.
    pub train: TrainSummary,
    /// The derived capacity profile's `(start, share)` segments.
    pub profile_segments: Vec<(f64, f64)>,
    /// Worst co-located / serve-only p99 TTFT ratio among priority-0
    /// tenants — the SLO-protection headline number.
    pub top_p99_ratio: f64,
}

/// A standalone serving engine sized in cache blocks; vocab matches
/// [`run_colocated`]'s arrival generation (returned second).
pub fn standard_server(cache_blocks: usize, max_batch: usize) -> (GenServer, usize) {
    let lm = TinyLm::new(LmConfig { vocab: 16, hidden: 8, ffn: 12, layers: 2 }, 11);
    let slot_bytes = lm.decode_start().cache_bytes();
    let mut server = GenServer::new(GenConfig {
        block_tokens: 4,
        cache_budget_bytes: cache_blocks * 4 * slot_bytes,
        max_batch,
        ..GenConfig::default()
    });
    server.install_weights(&lm);
    let vocab = lm.cfg.vocab;
    (server, vocab)
}

/// Runs the pipelined PPO job on a split placement and returns its
/// timeline, telemetry spans, and progress summary.
pub fn run_training(cc: &ColocateConfig) -> (Vec<TimelineEntry>, Vec<SpanRecord>, TrainSummary) {
    let rc = RlhfConfig::tiny();
    let n = cc.per_model;
    let ctrl = Controller::with_telemetry(
        ClusterSpec::a100_with_gpus(4 * n),
        CommCostModel::default(),
        Telemetry::enabled(),
    );
    let (p, t, d) = cc.spec;
    let spec = ParallelSpec::new(p, t, d);
    let gen = GenGrouping::new(spec, 1, cc.tg, GroupingMethod::Strided);
    let train = WorkerLayout::train_only(spec);
    let placement = Placement {
        actor: ModelPlacement {
            pool: ResourcePool::contiguous(0, n),
            layout: WorkerLayout::with_gen(gen),
        },
        critic: Some(ModelPlacement { pool: ResourcePool::contiguous(n, n), layout: train }),
        reference: ModelPlacement { pool: ResourcePool::contiguous(2 * n, n), layout: train },
        reward: ModelPlacement { pool: ResourcePool::contiguous(3 * n, n), layout: train },
        cost: None,
    };
    let sys = RlhfSystem::build(&ctrl, &placement, rc.clone()).expect("build split system");
    let mut driver = PipelinedPpo::new(PipelineConfig { staleness: 1, gen_chunks: cc.gen_chunks });
    let mut stats = Vec::new();
    for iter in 0..cc.iterations as u64 {
        let prompts =
            make_prompts(cc.rows, rc.prompt_len, rc.response_len, rc.lm.vocab as u32, iter);
        if let Some(s) = driver.step(&sys, &ctrl, &prompts).expect("pipelined step") {
            stats.push(s);
        }
    }
    stats.extend(driver.flush(&sys, &ctrl).expect("pipeline flush"));
    let timeline = ctrl.timeline();
    let spans = ctrl.telemetry().spans();
    let virtual_seconds = ctrl.clock();
    ctrl.shutdown().expect("shutdown");
    let stall: f64 =
        spans.iter().filter(|s| s.name.starts_with("transition.")).map(|s| s.end - s.start).sum();
    let count = stats.len().max(1) as f64;
    let summary = TrainSummary {
        iterations: stats.len() as u64,
        virtual_seconds,
        transition_stall_s: stall,
        mean_score: stats.iter().map(|s| s.mean_score as f64).sum::<f64>() / count,
        mean_actor_loss: stats.iter().map(|s| s.actor_loss as f64).sum::<f64>() / count,
    };
    (timeline, spans, summary)
}

/// Folds a training timeline + transition spans into the front-end's
/// capacity profile: generation phases leave `share_gen`, training
/// phases leave `share_train`, transitions leave zero, and every
/// instant after the job ends is full capacity. Overlapping phases
/// take the minimum share. The whole timeline (which the tiny
/// simulated models finish in milliseconds) is stretched onto
/// `cc.train_window_s` of serving time, and each transition becomes a
/// blackout at least `cc.transition_floor_s` wide.
pub fn train_capacity_profile(
    timeline: &[TimelineEntry],
    spans: &[SpanRecord],
    cc: &ColocateConfig,
    train_virtual_s: f64,
) -> CapacityProfile {
    let scale = if train_virtual_s > 0.0 { cc.train_window_s / train_virtual_s } else { 1.0 };
    let mut intervals: Vec<(f64, f64, f64)> = Vec::new();
    for e in timeline {
        if e.completed <= e.dispatched {
            continue;
        }
        let share = if e.method.contains("generate") { cc.share_gen } else { cc.share_train };
        intervals.push((e.dispatched * scale, e.completed * scale, share));
    }
    for s in spans {
        if s.name.starts_with("transition.to") {
            let start = s.start * scale;
            let end = (s.end * scale).max(start + cc.transition_floor_s);
            intervals.push((start, end, 0.0));
        }
    }
    if intervals.is_empty() {
        return CapacityProfile::constant(1.0);
    }
    let mut bounds: Vec<f64> = intervals.iter().flat_map(|&(a, b, _)| [a, b]).collect();
    bounds.push(0.0);
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();
    let mut segments: Vec<(f64, f64)> = Vec::new();
    for w in bounds.windows(2) {
        let mid = 0.5 * (w[0] + w[1]);
        let share = intervals
            .iter()
            .filter(|&&(a, b, _)| a <= mid && mid < b)
            .map(|&(_, _, s)| s)
            .fold(1.0f64, f64::min);
        if segments.last().map(|&(_, s)| s) != Some(share) {
            segments.push((w[0], share));
        }
    }
    let end = *bounds.last().expect("non-empty bounds");
    if segments.last().map(|&(_, s)| s) != Some(1.0) {
        segments.push((end, 1.0));
    }
    CapacityProfile::from_segments(segments)
}

/// Runs the headline co-located scenario. `horizon_s <= 0` serves for
/// exactly the training job's duration. The top-priority p99 ratio
/// compares the co-located run against a serve-only replay of the
/// identical arrival schedule.
#[allow(clippy::too_many_arguments)]
pub fn run_colocated(
    cc: &ColocateConfig,
    server: &GenServer,
    vocab: usize,
    tenants: &[TenantSpec],
    horizon_s: f64,
    load: f64,
    seed: u64,
    serve_cfg: &ServeConfig,
    tel: Option<&Telemetry>,
) -> Result<ColocatedRun, GenError> {
    let (timeline, spans, train) = run_training(cc);
    let profile = train_capacity_profile(&timeline, &spans, cc, train.virtual_seconds);
    let horizon = if horizon_s > 0.0 { horizon_s } else { cc.train_window_s };
    let arrivals = build_arrivals(tenants, horizon, load, vocab, seed);
    let colocated = frontend::run(server, tenants, &arrivals, serve_cfg, &profile, tel)?;
    let serve_only = frontend::run(
        server,
        tenants,
        &arrivals,
        serve_cfg,
        &CapacityProfile::constant(1.0),
        None,
    )?;
    let top = tenants.iter().map(|t| t.priority).min().unwrap_or(0);
    let mut ratio = 1.0f64;
    for (co, base) in colocated.tenants.iter().zip(&serve_only.tenants) {
        if co.priority == top && co.completed > 0 && base.p99_ttft_s > 0.0 {
            ratio = ratio.max(co.p99_ttft_s / base.p99_ttft_s);
        }
    }
    Ok(ColocatedRun {
        colocated,
        serve_only,
        train,
        profile_segments: profile.segments().to_vec(),
        top_p99_ratio: ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::mixes;

    #[test]
    fn train_profile_has_transition_blackouts_and_recovers_to_full() {
        let cc = ColocateConfig::default();
        let (timeline, spans, train) = run_training(&cc);
        assert_eq!(train.iterations, cc.iterations as u64);
        assert!(train.virtual_seconds > 0.0);
        let profile = train_capacity_profile(&timeline, &spans, &cc, train.virtual_seconds);
        let segs = profile.segments();
        assert!(segs.iter().any(|&(_, s)| s == 0.0), "transitions must black out capacity");
        assert!(
            segs.iter().any(|&(_, s)| s == cc.share_train),
            "training phases must leave share_train"
        );
        assert_eq!(segs.last().unwrap().1, 1.0, "capacity recovers after the job ends");
        assert!(
            segs.last().unwrap().0 <= cc.train_window_s * 1.01,
            "profile is stretched onto the serving window"
        );
        assert!(segs.windows(2).all(|w| w[0].0 < w[1].0), "segments strictly ordered");
    }

    #[test]
    fn colocated_run_protects_the_top_tier_and_still_trains() {
        let cc = ColocateConfig::default();
        let (server, vocab) = standard_server(64, 8);
        let tenants = mixes::tiered();
        let cfg = ServeConfig::default();
        let run = run_colocated(&cc, &server, vocab, &tenants, 0.0, 2.0, 42, &cfg, None).unwrap();
        assert_eq!(run.train.iterations, cc.iterations as u64, "training makes progress");
        assert!(run.train.mean_score.is_finite());
        let gold = &run.colocated.tenants[0];
        assert_eq!(gold.priority, 0);
        assert!(gold.completed > 0);
        assert!(
            run.top_p99_ratio <= 1.25,
            "co-location must not degrade top-tier p99 TTFT by more than 25% \
             (got {:.3})",
            run.top_p99_ratio
        );
        assert!(
            (gold.slo_attainment - 1.0).abs() < 1e-9,
            "top-tier SLO attainment must hold under co-location"
        );
        // The same schedule replayed twice is bit-identical.
        let again = run_colocated(&cc, &server, vocab, &tenants, 0.0, 2.0, 42, &cfg, None).unwrap();
        assert_eq!(run.top_p99_ratio.to_bits(), again.top_p99_ratio.to_bits());
        assert_eq!(run.colocated.duration_s.to_bits(), again.colocated.duration_s.to_bits());
    }
}
