//! # hf-serve — multi-tenant SLO-aware serving over hf-genserve
//!
//! A traffic layer in front of the paged generation engine, modeling
//! the deployment HybridFlow targets: the same fleet that trains the
//! policy also serves it, and serving must keep its latency SLOs while
//! training periodically takes the devices.
//!
//! Pieces:
//!
//! - [`tenant`] — [`TenantSpec`]: priority class, seeded Poisson or
//!   trace-driven arrivals, token budget, TTFT SLO; plus the three
//!   standard [`tenant::mixes`] the `serve_slo` bench sweeps.
//! - [`arrival`] — [`arrival::build_arrivals`] unrolls every tenant
//!   into one merged virtual-time schedule; a pure function of
//!   `(tenants, horizon, load, seed)`, so replays are bit-identical.
//! - [`frontend`] — the event-driven serving loop: SLO-aware admission
//!   (per-tenant headroom on top of the engine watermark, skip—not
//!   block—on failure), priority shedding under queue pressure and
//!   token budgets, shared-prefix-cache attribution via the engine's
//!   [`hf_genserve::TenantLedger`], and per-tenant TTFT / throughput
//!   digests exported through `hf-telemetry` as
//!   `genserve.tenant<k>.*`.
//! - [`driver`] — the co-located scenario: a pipelined PPO job's
//!   timeline and HybridEngine transition spans become a
//!   [`CapacityProfile`], and the same arrival schedule is replayed
//!   co-located vs serve-only to pin top-tier SLO protection.
//! - [`elastic`] — [`training_remaps`]: the reverse signal. A rising
//!   serving share shrinks training's device budget; each shrink
//!   becomes a boundary-aligned `PlannedRemap` that
//!   `hf_rlhf::remap_recoverable` consumes to re-place and reshard the
//!   training job live.
//!
//! Everything runs in virtual time with no wall-clock reads: a whole
//! co-located run is a pure function of `(config, seed)`.

pub mod arrival;
pub mod driver;
pub mod elastic;
pub mod frontend;
pub mod tenant;

pub use arrival::{build_arrivals, Arrival};
pub use driver::{
    run_colocated, run_training, standard_server, train_capacity_profile, ColocateConfig,
    ColocatedRun, TrainSummary,
};
pub use elastic::training_remaps;
pub use frontend::{run, CapacityProfile, ServeConfig, ServeReport, TenantReport};
pub use tenant::{mixes, ArrivalProcess, TenantSpec};
