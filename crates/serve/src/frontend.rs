//! The multi-tenant front-end: a virtual-time open-loop serving run
//! over one [`GenServer`] engine session.
//!
//! The loop is event-driven and single-threaded: arrivals are ingested
//! when virtual time reaches them, SLO-aware admission decides
//! submit-or-shed per tenant, and each engine step advances the clock
//! by a capacity-dependent latency. Capacity comes from a
//! [`CapacityProfile`] — a piecewise share of the engine the front-end
//! owns (1.0 serve-only, less while co-located training holds the
//! devices, 0 during HybridEngine transitions). The whole run is a
//! pure function of its inputs; replays are bit-identical.

use std::collections::BTreeMap;

use hf_genserve::{GenError, GenServer, TenantPolicy};
use hf_telemetry::{genserve_metric, Digest, Telemetry};

use crate::arrival::Arrival;
use crate::tenant::TenantSpec;

/// Front-end tuning knobs (engine config lives on the [`GenServer`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Fixed virtual seconds per engine step.
    pub step_overhead_s: f64,
    /// Additional virtual seconds per sequence in the step batch.
    pub per_token_s: f64,
    /// Interference model: a step under capacity share `s` is slowed by
    /// `1 + contention × (1 − s)` (training contends for memory
    /// bandwidth even on disjoint lanes).
    pub contention: f64,
    /// Pressure shedding: priority class `p > 0` is shed on arrival
    /// when engine queue depth exceeds
    /// `lanes + ⌊factor × lanes / 2^p⌋` — lower priorities lose their
    /// slack first; priority 0 is never shed.
    pub queue_slack_factor: f64,
    /// Admission headroom ladder: priority class `p` must leave
    /// `p × headroom_step_blocks` extra free blocks to be admitted
    /// (via [`TenantPolicy::headroom_blocks`]).
    pub headroom_step_blocks: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            step_overhead_s: 2e-3,
            per_token_s: 1e-3,
            contention: 0.25,
            queue_slack_factor: 4.0,
            headroom_step_blocks: 1,
        }
    }
}

/// Piecewise-constant share of the generation engine the front-end
/// owns over virtual time.
#[derive(Debug, Clone)]
pub struct CapacityProfile {
    /// `(start, share)` segments, ascending by start; the first starts
    /// at or before 0, the last extends to infinity.
    segments: Vec<(f64, f64)>,
}

impl CapacityProfile {
    /// Full capacity forever (the serve-only baseline).
    pub fn constant(share: f64) -> Self {
        CapacityProfile { segments: vec![(0.0, share)] }
    }

    /// Builds a profile from `(start, share)` break points (sorted by
    /// start; shares clamped to `[0, 1]`).
    pub fn from_segments(mut segments: Vec<(f64, f64)>) -> Self {
        assert!(!segments.is_empty(), "profile needs at least one segment");
        segments.sort_by(|a, b| a.0.total_cmp(&b.0));
        for s in &mut segments {
            s.1 = s.1.clamp(0.0, 1.0);
        }
        if segments[0].0 > 0.0 {
            segments.insert(0, (0.0, segments[0].1));
        }
        CapacityProfile { segments }
    }

    /// The share at time `t` and the time the next segment starts
    /// (`f64::INFINITY` in the last segment).
    pub fn at(&self, t: f64) -> (f64, f64) {
        let idx = match self.segments.partition_point(|&(s, _)| s <= t) {
            0 => 0,
            n => n - 1,
        };
        let until = self.segments.get(idx + 1).map_or(f64::INFINITY, |&(s, _)| s);
        (self.segments[idx].1, until)
    }

    /// The segment list (for reports).
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }
}

/// Per-tenant outcome of one serving run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Priority class.
    pub priority: u8,
    /// Requests that arrived.
    pub arrivals: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed by queue-pressure degradation.
    pub shed_pressure: u64,
    /// Requests shed by the tenant's token budget.
    pub shed_budget: u64,
    /// Tokens generated for this tenant.
    pub generated_tokens: u64,
    /// TTFT digest (mergeable log-bucket percentiles).
    pub ttft: Digest,
    /// TTFT p50 (digest representative, virtual seconds).
    pub p50_ttft_s: f64,
    /// TTFT p99 (digest representative, virtual seconds).
    pub p99_ttft_s: f64,
    /// The tenant's SLO target.
    pub slo_ttft_s: f64,
    /// Fraction of completed requests within the TTFT SLO.
    pub slo_attainment: f64,
    /// Generated tokens per virtual second of the run.
    pub tokens_per_s: f64,
    /// Prefix-cache blocks borrowed from other tenants.
    pub cross_hit_blocks: u64,
    /// Cached blocks this tenant evicted.
    pub evictions_caused: u64,
    /// This tenant's cached blocks evicted by others.
    pub evictions_suffered: u64,
    /// Peak bytes charged to this tenant (fractional shares of shared
    /// blocks; all tenants' charges sum to physical bytes).
    pub peak_charged_bytes: u64,
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Virtual seconds from first arrival to last retirement.
    pub duration_s: f64,
    /// Engine steps executed.
    pub engine_steps: u64,
    /// Engine preemption events.
    pub preemptions: u64,
    /// Prompt tokens served from the prefix cache.
    pub prefix_hit_tokens: u64,
    /// Per-tenant outcomes, in tenant-index order.
    pub tenants: Vec<TenantReport>,
}

fn lanes_for(share: f64, max_batch: usize) -> usize {
    if share <= 0.0 {
        0
    } else {
        ((share * max_batch as f64).floor() as usize).max(1)
    }
}

/// Runs the front-end over a prepared arrival schedule and returns the
/// per-tenant report. `profile` scales engine capacity over time;
/// `tel`, when given, receives per-tenant digests, counters, and
/// gauges named `genserve.tenant<k>.*`.
pub fn run(
    server: &GenServer,
    tenants: &[TenantSpec],
    arrivals: &[Arrival],
    cfg: &ServeConfig,
    profile: &CapacityProfile,
    tel: Option<&Telemetry>,
) -> Result<ServeReport, GenError> {
    let mut session = server.session()?;
    let max_batch = session.max_batch();
    for (k, spec) in tenants.iter().enumerate() {
        session.set_tenant_policy(
            k as u32,
            TenantPolicy {
                headroom_blocks: spec.priority as usize * cfg.headroom_step_blocks,
                shed_order: spec.priority,
            },
        );
    }

    let n = tenants.len();
    let mut arrivals_seen = vec![0u64; n];
    let mut shed_pressure = vec![0u64; n];
    let mut shed_budget = vec![0u64; n];
    let mut completed = vec![0u64; n];
    let mut gen_tokens = vec![0u64; n];
    let mut committed_tokens = vec![0u64; n];
    let mut peak_charged = vec![0u64; n];
    let mut id_tenant: BTreeMap<usize, u32> = BTreeMap::new();
    let mut id_arrival_t: BTreeMap<usize, f64> = BTreeMap::new();
    let mut step_ends: Vec<f64> = Vec::new();

    let block_bytes = session.block_bytes() as u64;
    let mut t = 0.0f64;
    let mut ai = 0usize;
    loop {
        // 1. Ingest every arrival due by now: shed or submit.
        while ai < arrivals.len() && arrivals[ai].t <= t {
            let a = &arrivals[ai];
            ai += 1;
            let k = a.tenant as usize;
            let spec = &tenants[k];
            arrivals_seen[k] += 1;
            let budget = spec.token_budget_per_s;
            if budget > 0.0
                && (committed_tokens[k] + a.req.max_new_tokens as u64) as f64 > budget * (a.t + 1.0)
            {
                shed_budget[k] += 1;
                continue;
            }
            if spec.priority > 0 {
                let (share, _) = profile.at(t);
                let lanes = lanes_for(share, max_batch).max(1);
                let slack = (cfg.queue_slack_factor * lanes as f64
                    / (1u64 << spec.priority.min(16)) as f64)
                    .floor() as usize;
                let depth = session.waiting_len() + session.running_len();
                if depth > lanes + slack {
                    shed_pressure[k] += 1;
                    continue;
                }
            }
            committed_tokens[k] += a.req.max_new_tokens as u64;
            let id = session.submit(&a.req, a.tenant)?;
            id_tenant.insert(id, a.tenant);
            id_arrival_t.insert(id, a.t);
        }

        // 2. Step the engine under the current capacity share, or jump
        //    to the next event when it can't run.
        let (share, until) = profile.at(t);
        let lanes = lanes_for(share, max_batch);
        if lanes == 0 || session.is_idle() {
            let mut next = f64::INFINITY;
            if ai < arrivals.len() {
                next = next.min(arrivals[ai].t);
            }
            if !session.is_idle() {
                next = next.min(until);
            }
            if !next.is_finite() {
                break;
            }
            t = next.max(t);
            continue;
        }
        session.set_max_batch(lanes);
        let steps_before = session.report().steps;
        let more = session.step();
        if session.report().steps > steps_before {
            let tr = *session.report().traces.last().expect("step recorded a trace");
            let slowdown = 1.0 + cfg.contention * (1.0 - share);
            t += (cfg.step_overhead_s + cfg.per_token_s * tr.batch as f64) * slowdown;
            step_ends.push(t);
        }
        for (id, out) in session.drain_finished() {
            let k = id_tenant[&id] as usize;
            completed[k] += 1;
            gen_tokens[k] += out.tokens.len() as u64;
        }
        // Track the peak per-tenant charged bytes (fractional shares).
        for (tenant, bytes) in session.ledger().charged_bytes(block_bytes) {
            let k = tenant as usize;
            if k < n {
                peak_charged[k] = peak_charged[k].max(bytes);
            }
        }
        if !more && ai >= arrivals.len() && session.is_idle() {
            break;
        }
    }

    // 3. Convert per-request first-token step indices into TTFTs.
    let report = session.report().clone();
    let final_t = t;
    let mut ttft_digests: Vec<Digest> = vec![Digest::new(); n];
    let mut within_slo = vec![0u64; n];
    for (&id, &step) in &report.first_token_step {
        let k = id_tenant[&id] as usize;
        let t_first = step_ends.get(step as usize).copied().unwrap_or(final_t);
        let ttft = t_first - id_arrival_t[&id];
        ttft_digests[k].record(ttft);
        if ttft <= tenants[k].slo_ttft_s {
            within_slo[k] += 1;
        }
    }

    let duration = final_t.max(f64::MIN_POSITIVE);
    let ledger = session.ledger();
    let mut tenant_reports = Vec::with_capacity(n);
    for (k, spec) in tenants.iter().enumerate() {
        let stats = ledger.stats(k as u32);
        let ttft = ttft_digests[k].clone();
        let tr = TenantReport {
            name: spec.name.clone(),
            priority: spec.priority,
            arrivals: arrivals_seen[k],
            completed: completed[k],
            shed_pressure: shed_pressure[k],
            shed_budget: shed_budget[k],
            generated_tokens: gen_tokens[k],
            p50_ttft_s: ttft.quantile(0.5),
            p99_ttft_s: ttft.quantile(0.99),
            slo_ttft_s: spec.slo_ttft_s,
            slo_attainment: if completed[k] == 0 {
                1.0
            } else {
                within_slo[k] as f64 / completed[k] as f64
            },
            tokens_per_s: gen_tokens[k] as f64 / duration,
            cross_hit_blocks: stats.cross_hit_blocks,
            evictions_caused: stats.evictions_caused,
            evictions_suffered: stats.evictions_suffered,
            peak_charged_bytes: peak_charged[k],
            ttft,
        };
        if let Some(tel) = tel {
            let consumer = format!("tenant{k}");
            tel.merge_digest(&genserve_metric(&consumer, "ttft_s"), &tr.ttft);
            tel.set_gauge(&genserve_metric(&consumer, "tokens_per_s"), tr.tokens_per_s);
            tel.add_counter(&genserve_metric(&consumer, "completed"), tr.completed);
            tel.add_counter(&genserve_metric(&consumer, "shed"), tr.shed_pressure + tr.shed_budget);
            tel.add_counter(&genserve_metric(&consumer, "generated_tokens"), tr.generated_tokens);
        }
        tenant_reports.push(tr);
    }

    Ok(ServeReport {
        duration_s: final_t,
        engine_steps: report.steps,
        preemptions: report.preemptions,
        prefix_hit_tokens: report.prefix_hit_tokens,
        tenants: tenant_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::build_arrivals;
    use crate::driver::standard_server;
    use crate::tenant::mixes;

    #[test]
    fn capacity_profile_lookup_walks_segments() {
        let p = CapacityProfile::from_segments(vec![(2.0, 0.5), (0.0, 1.0), (4.0, 0.0)]);
        assert_eq!(p.at(1.0), (1.0, 2.0));
        assert_eq!(p.at(2.0), (0.5, 4.0));
        assert_eq!(p.at(3.9), (0.5, 4.0));
        assert_eq!(p.at(4.0), (0.0, f64::INFINITY));
        assert_eq!(p.at(100.0), (0.0, f64::INFINITY));
        let c = CapacityProfile::constant(1.0);
        assert_eq!(c.at(7.0), (1.0, f64::INFINITY));
    }

    #[test]
    fn serve_only_run_is_deterministic_and_conserves_requests() {
        let (server, vocab) = standard_server(64, 8);
        let tenants = mixes::tiered();
        let arrivals = build_arrivals(&tenants, 8.0, 1.0, vocab, 42);
        let cfg = ServeConfig::default();
        let full = CapacityProfile::constant(1.0);
        let a = run(&server, &tenants, &arrivals, &cfg, &full, None).unwrap();
        let b = run(&server, &tenants, &arrivals, &cfg, &full, None).unwrap();
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits(), "bit-identical replay");
        assert_eq!(a.engine_steps, b.engine_steps);
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.p99_ttft_s.to_bits(), y.p99_ttft_s.to_bits());
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.peak_charged_bytes, y.peak_charged_bytes);
            // Every arrival is accounted for: served or shed, never lost.
            assert_eq!(x.arrivals, x.completed + x.shed_pressure + x.shed_budget);
            assert!(x.arrivals > 0, "every tenant generates traffic");
        }
    }

    #[test]
    fn latency_rises_with_load_and_budget_shedding_spares_upper_tiers() {
        let (server, vocab) = standard_server(64, 8);
        let tenants = mixes::tiered();
        let cfg = ServeConfig::default();
        let full = CapacityProfile::constant(1.0);
        let light_arr = build_arrivals(&tenants, 8.0, 0.5, vocab, 42);
        let heavy_arr = build_arrivals(&tenants, 8.0, 4.0, vocab, 42);
        assert!(heavy_arr.len() > 2 * light_arr.len());
        let light = run(&server, &tenants, &light_arr, &cfg, &full, None).unwrap();
        let heavy = run(&server, &tenants, &heavy_arr, &cfg, &full, None).unwrap();
        assert!(
            heavy.tenants.iter().zip(&light.tenants).any(|(h, l)| h.p99_ttft_s > l.p99_ttft_s),
            "8x the traffic must push some tenant's p99 up"
        );
        // Only bronze has a token budget; only bronze pays it.
        assert!(heavy.tenants[2].shed_budget > 0, "bronze budget must bind at 4x load");
        assert_eq!(heavy.tenants[0].shed_budget, 0);
        assert_eq!(heavy.tenants[1].shed_budget, 0);
        assert_eq!(heavy.tenants[0].shed_pressure, 0, "priority 0 is never shed");
        // Cross-tenant prefix sharing actually happens and is attributed.
        assert!(
            heavy.tenants.iter().map(|t| t.cross_hit_blocks).sum::<u64>() > 0,
            "template pool must produce cross-tenant cache hits"
        );
    }
}
