//! Virtual tenants: traffic shape, priority, token budget, SLO target.

/// How a tenant's arrivals are generated.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Seeded Poisson process with the given mean rate (requests/s,
    /// before the scenario load multiplier).
    Poisson {
        /// Mean arrivals per virtual second.
        rate_per_s: f64,
    },
    /// Trace-driven: explicit arrival offsets (virtual seconds) that
    /// repeat with the given period until the horizon. The load
    /// multiplier compresses the period (and the offsets), so load 2
    /// replays the trace twice as fast.
    Trace {
        /// Arrival offsets within one period, ascending.
        offsets: Vec<f64>,
        /// Trace period in virtual seconds.
        period_s: f64,
    },
}

/// One virtual tenant of the serving front-end.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Stable display name.
    pub name: String,
    /// Priority class: 0 is top tier (never shed, smallest admission
    /// headroom); larger numbers degrade first.
    pub priority: u8,
    /// Arrival process (deterministic in virtual time given the seed).
    pub arrivals: ArrivalProcess,
    /// Prompt tokens per request.
    pub prompt_len: usize,
    /// Leading prompt tokens drawn from the *global* template pool, so
    /// identical prefixes recur across tenants and hit the shared
    /// prefix cache. 0 disables sharing.
    pub shared_prefix_len: usize,
    /// Tokens generated per request.
    pub max_new_tokens: usize,
    /// Generated-token budget (tokens/s of virtual time, scaled by the
    /// load multiplier's clock). Arrivals whose commitment would
    /// exceed it are shed with a `budget` verdict. 0 = unlimited.
    pub token_budget_per_s: f64,
    /// Time-to-first-token SLO target (virtual seconds).
    pub slo_ttft_s: f64,
    /// Tenant seed, folded with the scenario seed.
    pub seed: u64,
}

impl TenantSpec {
    /// A plain Poisson tenant with unlimited budget.
    pub fn poisson(name: &str, priority: u8, rate_per_s: f64, slo_ttft_s: f64) -> Self {
        TenantSpec {
            name: name.into(),
            priority,
            arrivals: ArrivalProcess::Poisson { rate_per_s },
            prompt_len: 10,
            shared_prefix_len: 4,
            max_new_tokens: 8,
            token_budget_per_s: 0.0,
            slo_ttft_s,
            seed: 0x7e4a_0000 + priority as u64,
        }
    }
}

/// The three standard tenant mixes the `serve_slo` bench sweeps. Each
/// is deterministic; the scenario seed picks the sample path.
pub mod mixes {
    use super::{ArrivalProcess, TenantSpec};

    /// Three equal-priority tenants, uniform Poisson traffic — the
    /// baseline latency-vs-load curve with no policy differentiation.
    pub fn uniform3() -> Vec<TenantSpec> {
        (0..3u8)
            .map(|i| TenantSpec {
                name: format!("uniform-{i}"),
                seed: 0x1111 + i as u64,
                ..TenantSpec::poisson("x", 1, 2.0, 1.0)
            })
            .collect()
    }

    /// Gold / silver / bronze: descending priority, ascending traffic,
    /// and a budget cap on bronze — the graceful-degradation scenario.
    pub fn tiered() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                prompt_len: 10,
                shared_prefix_len: 4,
                ..TenantSpec::poisson("gold", 0, 1.5, 0.6)
            },
            TenantSpec { ..TenantSpec::poisson("silver", 1, 2.5, 1.2) },
            TenantSpec { token_budget_per_s: 24.0, ..TenantSpec::poisson("bronze", 2, 4.0, 2.5) },
        ]
    }

    /// A steady top-tier tenant sharing the engine with a trace-driven
    /// burst tenant (8 requests slammed at each period start) — the
    /// eviction-storm / interference scenario.
    pub fn bursty() -> Vec<TenantSpec> {
        vec![
            TenantSpec { ..TenantSpec::poisson("steady-gold", 0, 1.5, 0.6) },
            TenantSpec {
                name: "burst".into(),
                priority: 2,
                arrivals: ArrivalProcess::Trace {
                    offsets: (0..8).map(|i| i as f64 * 0.01).collect(),
                    period_s: 4.0,
                },
                prompt_len: 12,
                shared_prefix_len: 0,
                max_new_tokens: 10,
                token_budget_per_s: 0.0,
                slo_ttft_s: 3.0,
                seed: 0xb0b0,
            },
        ]
    }
}
