//! Deriving elastic re-mapping signals from a serving capacity profile.
//!
//! When the co-located fleet's serving share rises — a traffic surge,
//! a new tenant, a tightened SLO — training's device budget shrinks.
//! [`training_remaps`] turns the serving [`CapacityProfile`] into the
//! [`PlannedRemap`] schedule `hf_rlhf::remap_recoverable` consumes:
//! each segment where serving claims more of the fleet becomes a
//! load-shift signal maturing at the next training iteration boundary,
//! where the elastic loop re-runs the device-mapping search and
//! reshards live onto the smaller budget.
//!
//! Only *shrinking* transitions are emitted: the elastic loop's budget
//! is monotone non-increasing (growing back after a surge is a future
//! item — it needs devices handed back by the serving engine, not just
//! a signal).

use hf_rlhf::PlannedRemap;

use crate::frontend::CapacityProfile;

/// Converts the serving share profile into training's load-shift
/// schedule. `serve_share` is the fraction of the `total`-GPU fleet the
/// front-end claims over virtual time; training keeps the complement,
/// never fewer than `min_devices`. `iter_seconds` estimates one
/// training iteration (virtual), mapping each segment start to the
/// first iteration boundary at or after it.
pub fn training_remaps(
    serve_share: &CapacityProfile,
    total: usize,
    min_devices: usize,
    iter_seconds: f64,
) -> Vec<PlannedRemap> {
    assert!(total >= 1, "fleet must have at least one device");
    assert!(iter_seconds > 0.0, "iteration estimate must be positive");
    let min_devices = min_devices.max(1);
    let budget_of = |share: f64| -> usize {
        (((1.0 - share) * total as f64).floor() as usize).clamp(min_devices, total)
    };
    let mut out: Vec<PlannedRemap> = Vec::new();
    let mut current = usize::MAX;
    for &(start, share) in serve_share.segments() {
        let devices = budget_of(share);
        if devices >= current {
            // Flat or growing: no live signal (see module docs).
            current = current.min(devices);
            continue;
        }
        current = devices;
        let after_iteration = (start / iter_seconds).ceil() as u64;
        match out.last_mut() {
            // Two shrinks landing on the same boundary collapse to the
            // tighter budget.
            Some(last) if last.after_iteration == after_iteration => {
                last.devices = last.devices.min(devices);
            }
            _ => out.push(PlannedRemap { after_iteration, devices }),
        }
    }
    // A shrink in the very first segment is the run's *initial* budget,
    // not a mid-run shift; the caller sizes the initial placement from
    // it instead.
    if out.first().is_some_and(|p| p.after_iteration == 0) {
        out.remove(0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surge_becomes_a_boundary_aligned_shrink() {
        // Serving claims half the fleet from t = 2.5s on.
        let profile = CapacityProfile::from_segments(vec![(0.0, 0.0), (2.5, 0.5)]);
        let remaps = training_remaps(&profile, 8, 1, 1.0);
        assert_eq!(remaps, vec![PlannedRemap { after_iteration: 3, devices: 4 }]);
    }

    #[test]
    fn growth_and_flat_segments_emit_nothing() {
        let profile = CapacityProfile::from_segments(vec![(0.0, 0.5), (4.0, 0.25), (8.0, 0.25)]);
        assert!(training_remaps(&profile, 8, 1, 1.0).is_empty());
    }

    #[test]
    fn staircase_shrinks_in_order_and_respects_the_floor() {
        let profile =
            CapacityProfile::from_segments(vec![(0.0, 0.0), (1.0, 0.25), (5.0, 0.5), (9.0, 0.99)]);
        let remaps = training_remaps(&profile, 8, 2, 2.0);
        assert_eq!(
            remaps,
            vec![
                PlannedRemap { after_iteration: 1, devices: 6 },
                PlannedRemap { after_iteration: 3, devices: 4 },
                PlannedRemap { after_iteration: 5, devices: 2 },
            ]
        );
    }

    #[test]
    fn same_boundary_shrinks_collapse_to_the_tightest() {
        let profile = CapacityProfile::from_segments(vec![(0.0, 0.0), (3.1, 0.25), (3.9, 0.5)]);
        let remaps = training_remaps(&profile, 8, 1, 4.0);
        assert_eq!(remaps, vec![PlannedRemap { after_iteration: 1, devices: 4 }]);
    }

    #[test]
    fn initial_segment_shrink_is_not_a_mid_run_shift() {
        let profile = CapacityProfile::constant(0.5);
        assert!(training_remaps(&profile, 8, 1, 1.0).is_empty());
    }
}
