//! Deterministic arrival generation: seeded Poisson and trace-driven
//! processes unrolled into one merged, virtual-time-ordered schedule.
//!
//! Everything is a pure function of `(tenants, horizon, load, seed)`:
//! the Poisson sample path, the prompt tokens, the per-request sampler
//! seeds. Replaying the same inputs reproduces the same schedule
//! bit-for-bit, which is what makes the serve benchmarks byte-stable.

use hf_genserve::GenRequest;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tenant::{ArrivalProcess, TenantSpec};

/// One request hitting the front-end at a virtual instant.
#[derive(Debug, Clone)]
pub struct Arrival {
    /// Virtual arrival time (seconds).
    pub t: f64,
    /// Index into the scenario's tenant list.
    pub tenant: u32,
    /// The generation request itself.
    pub req: GenRequest,
}

/// Number of global prompt templates; arrivals with a shared prefix
/// draw their leading tokens from one of these, so identical prefixes
/// recur across tenants.
const TEMPLATES: u64 = 2;

fn template_prefix(scenario_seed: u64, template: u64, len: usize, vocab: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(scenario_seed ^ 0xA5A5_0000 ^ template);
    (0..len).map(|_| rng.random_range(0..vocab)).collect()
}

/// Unrolls every tenant's arrival process over `[0, horizon_s)` at the
/// given load multiplier and merges them into one time-ordered
/// schedule (ties broken by tenant index, then arrival order).
pub fn build_arrivals(
    tenants: &[TenantSpec],
    horizon_s: f64,
    load: f64,
    vocab: usize,
    seed: u64,
) -> Vec<Arrival> {
    assert!(load > 0.0, "load multiplier must be positive");
    let mut all: Vec<(f64, u32, u64, Arrival)> = Vec::new();
    for (k, spec) in tenants.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ spec.seed.rotate_left(17));
        let times: Vec<f64> = match &spec.arrivals {
            ArrivalProcess::Poisson { rate_per_s } => {
                let rate = rate_per_s * load;
                let mut t = 0.0;
                let mut times = Vec::new();
                if rate > 0.0 {
                    loop {
                        let u: f64 = rng.random();
                        t += -(1.0 - u).ln() / rate;
                        if t >= horizon_s {
                            break;
                        }
                        times.push(t);
                    }
                }
                times
            }
            ArrivalProcess::Trace { offsets, period_s } => {
                let period = period_s / load;
                let mut times = Vec::new();
                let mut base = 0.0;
                'unroll: loop {
                    for off in offsets {
                        let t = base + off / load;
                        if t >= horizon_s {
                            break 'unroll;
                        }
                        times.push(t);
                    }
                    base += period;
                    if base >= horizon_s {
                        break;
                    }
                }
                times
            }
        };
        for (i, t) in times.into_iter().enumerate() {
            let shared = spec.shared_prefix_len.min(spec.prompt_len.saturating_sub(1));
            let mut prompt = if shared > 0 {
                let tpl = rng.random_range(0..TEMPLATES);
                template_prefix(seed, tpl, shared, vocab)
            } else {
                Vec::new()
            };
            while prompt.len() < spec.prompt_len {
                prompt.push(rng.random_range(0..vocab));
            }
            let req = GenRequest {
                prompt,
                max_new_tokens: spec.max_new_tokens,
                temperature: 0.0,
                seed: rng.random(),
                stop_tokens: Vec::new(),
            };
            all.push((t, k as u32, i as u64, Arrival { t, tenant: k as u32, req }));
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    all.into_iter().map(|(_, _, _, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::mixes;

    #[test]
    fn schedules_are_deterministic_and_load_scales_volume() {
        let tenants = mixes::tiered();
        let a = build_arrivals(&tenants, 10.0, 1.0, 16, 42);
        let b = build_arrivals(&tenants, 10.0, 1.0, 16, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.t.to_bits(), y.t.to_bits(), "bit-identical replay");
            assert_eq!(x.req.prompt, y.req.prompt);
            assert_eq!(x.req.seed, y.req.seed);
        }
        let heavy = build_arrivals(&tenants, 10.0, 4.0, 16, 42);
        assert!(
            heavy.len() as f64 > a.len() as f64 * 2.5,
            "4x load must produce roughly 4x arrivals ({} vs {})",
            heavy.len(),
            a.len()
        );
        assert!(a.windows(2).all(|w| w[0].t <= w[1].t), "time-ordered");
    }

    #[test]
    fn shared_prefixes_recur_across_tenants() {
        let tenants = mixes::uniform3();
        let arr = build_arrivals(&tenants, 20.0, 1.0, 16, 7);
        let shared = tenants[0].shared_prefix_len;
        let mut cross = 0usize;
        for (i, a) in arr.iter().enumerate() {
            for b in arr.iter().skip(i + 1) {
                if a.tenant != b.tenant && a.req.prompt[..shared] == b.req.prompt[..shared] {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "template pool must produce cross-tenant shared prefixes");
    }

    #[test]
    fn trace_tenant_replays_its_burst_every_period() {
        let tenants = mixes::bursty();
        let arr = build_arrivals(&tenants, 8.0, 1.0, 16, 3);
        let bursts: Vec<f64> = arr.iter().filter(|a| a.tenant == 1).map(|a| a.t).collect();
        // 8 offsets per 4 s period over 8 s → two full bursts.
        assert_eq!(bursts.len(), 16);
        assert!(bursts[8] >= 4.0, "second burst starts at the period boundary");
    }
}
