//! Experiment implementations, one per table/figure.

use std::time::Instant;

use hf_baselines::{estimate, Estimate, System};
use hf_hybridengine::{transition_metrics, transition_time, EngineMode, TransitionMetrics};
use hf_mapping::{AlgoKind, DataflowSpec, Mapper, PlacementPlan};
use hf_modelspec::{memory, ModelConfig, PerfModel, RlhfWorkload, TrainEngine};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_simcluster::{ClusterSpec, DeviceId};

/// Builds the analytic substrate for `gpus` A100s.
pub fn perf(gpus: usize) -> PerfModel {
    PerfModel::new(ClusterSpec::a100_with_gpus(gpus))
}

/// The paper's cluster-size ladder for a model scale: smallest non-OOM
/// power-of-two machine count up to 128 GPUs (§8.2).
pub fn gpu_ladder(model: &ModelConfig) -> Vec<usize> {
    let min = match model.name.as_str() {
        "llama-7b" => 8,
        "llama-13b" => 16,
        "llama-34b" => 32,
        "llama-70b" => 64,
        _ => 8,
    };
    let mut out = Vec::new();
    let mut n = min;
    while n <= 128 {
        out.push(n);
        n *= 2;
    }
    out
}

/// One throughput measurement (Figures 9, 10, 11).
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Model name.
    pub model: String,
    /// Cluster size in GPUs.
    pub gpus: usize,
    /// System measured.
    pub system: System,
    /// Tokens/s, `None` when the system OOMs at this scale.
    pub throughput: Option<f64>,
}

/// Figures 9/10/11: end-to-end RLHF throughput for every system across
/// the model ladder. `models`/`sizes` allow trimming for quick runs.
pub fn e2e_throughput(
    algo: AlgoKind,
    models: &[ModelConfig],
    max_gpus: usize,
) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for model in models {
        let ladder: Vec<usize> = gpu_ladder(model).into_iter().filter(|&n| n <= max_gpus).collect();
        for &gpus in &ladder {
            let pm = perf(gpus);
            let df = DataflowSpec::uniform(algo, model.clone(), RlhfWorkload::paper());
            for system in System::all() {
                let tp = estimate(system, &pm, &df, gpus).map(|e| e.throughput(&df));
                rows.push(ThroughputRow {
                    model: model.name.clone(),
                    gpus,
                    system,
                    throughput: tp,
                });
            }
        }
    }
    rows
}

/// Headline statistics derived from a throughput sweep (§8.2): average
/// and maximum speedup of HybridFlow over each baseline.
pub fn speedups(rows: &[ThroughputRow]) -> Vec<(System, f64, f64)> {
    let mut out = Vec::new();
    for baseline in [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner] {
        let mut ratios = Vec::new();
        for r in rows.iter().filter(|r| r.system == System::HybridFlow) {
            let hf = match r.throughput {
                Some(t) => t,
                None => continue,
            };
            if let Some(b) =
                rows.iter().find(|b| b.system == baseline && b.model == r.model && b.gpus == r.gpus)
            {
                if let Some(bt) = b.throughput {
                    ratios.push(hf / bt);
                }
            }
        }
        if ratios.is_empty() {
            continue;
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        out.push((baseline, avg, max));
    }
    out
}

/// One placement measurement (Figures 12, 13).
#[derive(Debug, Clone)]
pub struct PlacementRow {
    /// Model label.
    pub model: String,
    /// Cluster size.
    pub gpus: usize,
    /// Placement label (`colocate` / `standalone` / `split` / `hybridflow`).
    pub placement: String,
    /// Tokens/s, `None` if infeasible.
    pub throughput: Option<f64>,
}

/// Figure 12: HybridFlow under the named placements vs the Algorithm 1
/// optimum, for one model across cluster sizes.
pub fn placement_comparison(df: &DataflowSpec, sizes: &[usize]) -> Vec<PlacementRow> {
    let mut rows = Vec::new();
    for &gpus in sizes {
        let mapper = Mapper::new(perf(gpus), df.clone(), gpus);
        let roles = df.roles();
        let named = [
            ("colocate", PlacementPlan::colocate(&roles)),
            ("standalone", PlacementPlan::standalone(&roles)),
            ("split", PlacementPlan::split(&roles)),
        ];
        for (label, plan) in named {
            let tp = mapper.evaluate_plan(&plan).map(|m| m.throughput(df));
            rows.push(PlacementRow {
                model: df.actor.name.clone(),
                gpus,
                placement: label.into(),
                throughput: tp,
            });
        }
        let best = mapper.search().map(|m| m.throughput(df));
        rows.push(PlacementRow {
            model: df.actor.name.clone(),
            gpus,
            placement: "hybridflow".into(),
            throughput: best,
        });
    }
    rows
}

/// One transition measurement (Figure 14).
#[derive(Debug, Clone)]
pub struct TransitionRow {
    /// Model name.
    pub model: String,
    /// Cluster size used for this model scale.
    pub gpus: usize,
    /// System.
    pub system: System,
    /// Transition time in seconds, `None` if the system OOMs.
    pub seconds: Option<f64>,
}

/// Figure 14: train↔generation transition time per system across model
/// scales (HybridFlow vs DS-Chat vs OpenRLHF; NeMo shares weights).
///
/// HybridFlow's entry uses a fixed canonical actor layout per model
/// (training `1-8-d`, generation `1-2`) so the column isolates the
/// *engine's* resharding cost rather than the mapper's per-scale layout
/// choices; the baselines reshard per their own engines.
pub fn transition_comparison(models: &[ModelConfig]) -> Vec<TransitionRow> {
    let mut rows = Vec::new();
    for model in models {
        let gpus = *gpu_ladder(model).first().expect("ladder non-empty");
        let pm = perf(gpus);
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
        for system in [System::DeepSpeedChat, System::OpenRlhf, System::HybridFlow] {
            let t = if system == System::HybridFlow {
                let spec = ParallelSpec::new(1, 8, gpus / 8);
                let grouping = GenGrouping::new(spec, 1, 2, GroupingMethod::Strided);
                let devices: Vec<DeviceId> = (0..gpus).map(DeviceId).collect();
                Some(transition_time(
                    EngineMode::HybridFlow,
                    model,
                    &spec,
                    &grouping,
                    &devices,
                    &pm.cluster,
                    &pm.comm,
                ))
            } else {
                estimate(system, &pm, &df, gpus).map(|e| e.transition)
            };
            rows.push(TransitionRow { model: model.name.clone(), gpus, system, seconds: t });
        }
    }
    rows
}

/// One Figure 15 measurement.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    /// Model name.
    pub model: String,
    /// Generation TP size swept.
    pub tg: usize,
    /// Transition seconds.
    pub transition: f64,
    /// Generation seconds.
    pub generation: f64,
    /// KV-cache waves needed.
    pub waves: usize,
}

/// Figure 15: transition + generation time on 16 GPUs with training
/// layout 1-8-2 and generation TP `t_g ∈ {1,2,4,8}` (`p_g = 1`,
/// `d_g = 8/t_g`), all models colocated, best-effort KV cache.
pub fn breakdown_16gpus(model: &ModelConfig) -> Vec<BreakdownRow> {
    let gpus = 16;
    let pm = perf(gpus);
    let w = RlhfWorkload::paper();
    let spec = ParallelSpec::new(1, 8, 2);
    let devices: Vec<DeviceId> = (0..gpus).map(DeviceId).collect();
    // All four PPO models colocated: their states squeeze the KV budget.
    let resident: f64 = {
        let trained = memory::train_state_bytes_per_gpu(model, &spec, TrainEngine::Megatron3D);
        let infer = memory::infer_param_bytes_per_gpu(model, spec.mp());
        2.0 * trained + 2.0 * infer
    };
    let mut rows = Vec::new();
    for tg in [1usize, 2, 4, 8] {
        let grouping = GenGrouping::new(spec, 1, tg, GroupingMethod::Strided);
        let replicas = grouping.gen_replicas_total();
        let kv_budget =
            (pm.usable_gpu_bytes() - resident - memory::gen_param_bytes_per_gpu(model, 1, tg)
                + memory::infer_param_bytes_per_gpu(model, spec.mp()))
            .max(1e9);
        let bd = pm.generation_time(
            model,
            1,
            tg,
            replicas,
            &devices,
            w.global_batch,
            w.prompt_len,
            w.response_len,
            kv_budget,
            true,
        );
        let trans = transition_time(
            EngineMode::HybridFlow,
            model,
            &spec,
            &grouping,
            &devices,
            &pm.cluster,
            &pm.comm,
        );
        rows.push(BreakdownRow {
            model: model.name.clone(),
            tg,
            transition: trans,
            generation: bd.total(),
            waves: bd.waves,
        });
    }
    rows
}

/// One *measured* Figure 15 row: per-phase virtual seconds recorded by
/// telemetry while a functional tiny-model PPO iteration actually runs
/// on 16 simulated GPUs (training layout 1-8-2, generation TP `t_g`).
#[derive(Debug, Clone)]
pub struct MeasuredBreakdownRow {
    /// Generation TP size swept.
    pub tg: usize,
    /// Slowest rank's train→generation all-gather (virtual seconds).
    pub transition: f64,
    /// Generation-phase virtual seconds (includes the transition).
    pub generation: f64,
    /// Experience-preparation virtual seconds.
    pub preparation: f64,
    /// Training-phase virtual seconds.
    pub training: f64,
    /// Transition bytes received per GPU (measured by the byte counter).
    pub transition_bytes_per_gpu: u64,
}

/// Figure 15, measured: runs one functional PPO iteration per `t_g` with
/// telemetry enabled and reads the phase/transition breakdown off the
/// recorded spans. The tiny model makes absolute times incomparable to
/// the analytic llama rows, but the t_g *trend* — transition volume
/// shrinking as t_g approaches the training TP size — is the real
/// runtime's, not a closed form.
pub fn measured_breakdown_16gpus(tgs: &[usize]) -> Vec<MeasuredBreakdownRow> {
    use hf_core::{Controller, WorkerLayout};
    use hf_rlhf::env::make_prompts;
    use hf_rlhf::{ppo_iteration, Placement, RlhfConfig, RlhfSystem};
    use hf_simcluster::{CommCostModel, ResourcePool};
    use hf_telemetry::Telemetry;

    let gpus = 16;
    let spec = ParallelSpec::new(1, 8, 2);
    let mut rows = Vec::new();
    for &tg in tgs {
        let telemetry = Telemetry::enabled();
        let ctrl = Controller::with_telemetry(
            ClusterSpec::a100_with_gpus(gpus),
            CommCostModel::default(),
            telemetry.clone(),
        );
        let cfg = RlhfConfig::tiny();
        let gen = GenGrouping::new(spec, 1, tg, GroupingMethod::Strided);
        let placement = Placement::colocated(
            ResourcePool::contiguous(0, gpus),
            WorkerLayout::with_gen(gen),
            true,
            false,
        );
        let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build system");
        let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
        ppo_iteration(&sys, &ctrl, &prompts).expect("warmup iteration");
        telemetry.clear();
        ppo_iteration(&sys, &ctrl, &prompts).expect("measured iteration");

        let transition = telemetry
            .spans()
            .iter()
            .filter(|s| s.name == "transition.to_generation")
            .map(|s| s.duration())
            .fold(0.0, f64::max);
        let phase = |name: &str| {
            telemetry.histogram(&format!("phase.{name}.seconds")).map(|h| h.sum).unwrap_or(0.0)
        };
        rows.push(MeasuredBreakdownRow {
            tg,
            transition,
            generation: phase("generation"),
            preparation: phase("experience_preparation"),
            training: phase("training"),
            transition_bytes_per_gpu: telemetry.counter("transition.to_generation.recv_bytes")
                / gpus as u64,
        });
    }
    rows
}

/// One Figure 16 measurement: wall-clock runtime of Algorithm 1.
#[derive(Debug, Clone)]
pub struct MappingRuntimeRow {
    /// Model name.
    pub model: String,
    /// Cluster size.
    pub gpus: usize,
    /// Search wall-clock seconds.
    pub seconds: f64,
    /// (plan, allocation) combinations evaluated.
    pub evaluations: usize,
    /// Candidates skipped by the branch-and-bound lower bound.
    pub pruned: usize,
    /// Strategy-cache hit rate over the search.
    pub cache_hit_rate: f64,
}

/// Figure 16: device-mapping algorithm runtime, scaling model size and
/// cluster size together.
pub fn mapping_runtime() -> Vec<MappingRuntimeRow> {
    let settings = [
        (ModelConfig::llama_7b(), 16usize),
        (ModelConfig::llama_13b(), 32),
        (ModelConfig::llama_34b(), 64),
        (ModelConfig::llama_70b(), 128),
    ];
    let mut rows = Vec::new();
    for (model, gpus) in settings {
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
        let mapper = Mapper::new(perf(gpus), df, gpus);
        let t0 = Instant::now();
        let best = mapper.search();
        let dt = t0.elapsed().as_secs_f64();
        assert!(best.is_some(), "{} on {gpus} GPUs must map", model.name);
        let stats = mapper.stats();
        rows.push(MappingRuntimeRow {
            model: model.name.clone(),
            gpus,
            seconds: dt,
            evaluations: mapper.evaluations(),
            pruned: stats.pruned,
            cache_hit_rate: stats.cache_hit_rate(),
        });
    }
    rows
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Engine label.
    pub engine: &'static str,
    /// Closed-form metrics (fractions of model size `M = 1`).
    pub metrics: TransitionMetrics,
}

/// Table 2: transition overheads for the three engine designs, with
/// `M = 1` so entries read as fractions of the model size.
pub fn table2(spec: &ParallelSpec, pg: usize, tg: usize) -> Vec<Table2Row> {
    [
        ("DS-Chat", EngineMode::DsChat),
        ("HybridFlow-V", EngineMode::HybridFlowV),
        ("HybridFlow", EngineMode::HybridFlow),
    ]
    .into_iter()
    .map(|(label, mode)| Table2Row {
        engine: label,
        metrics: transition_metrics(mode, 1.0, spec, pg, tg),
    })
    .collect()
}

/// Figure 13 setting: 13B actor/reference with 70B critic/reward.
pub fn large_critic_comparison(sizes: &[usize]) -> Vec<PlacementRow> {
    let df = DataflowSpec::large_critic(RlhfWorkload::paper());
    let mut rows = placement_comparison(&df, sizes);
    for r in rows.iter_mut() {
        r.model = "13B actor + 70B critic".into();
    }
    rows
}

/// Strong-scaling efficiency over a throughput sweep (§8.2: 66.8%).
pub fn scaling_efficiency(rows: &[ThroughputRow]) -> Option<f64> {
    let mut effs = Vec::new();
    let models: Vec<String> = {
        let mut m: Vec<String> = rows.iter().map(|r| r.model.clone()).collect();
        m.sort();
        m.dedup();
        m
    };
    for model in models {
        let mut hf: Vec<(usize, f64)> = rows
            .iter()
            .filter(|r| r.system == System::HybridFlow && r.model == model)
            .filter_map(|r| r.throughput.map(|t| (r.gpus, t)))
            .collect();
        hf.sort_by_key(|&(g, _)| g);
        if hf.len() < 2 {
            continue;
        }
        let (g0, t0) = hf[0];
        let (g1, t1) = hf[hf.len() - 1];
        effs.push((t1 / t0) / (g1 as f64 / g0 as f64));
    }
    if effs.is_empty() {
        None
    } else {
        Some(effs.iter().sum::<f64>() / effs.len() as f64)
    }
}

/// Table 1-style stage timeline per system (used by the
/// `framework_comparison` example and the `table1` binary).
pub fn stage_breakdown(df: &DataflowSpec, gpus: usize) -> Vec<(System, Option<Estimate>)> {
    let pm = perf(gpus);
    System::all().into_iter().map(|s| (s, estimate(s, &pm, df, gpus))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sweep_shapes_hold_on_trimmed_grid() {
        let rows = e2e_throughput(AlgoKind::Ppo, &[ModelConfig::llama_7b()], 16);
        // HybridFlow present and fastest at every feasible point.
        for gpus in [8usize, 16] {
            let get = |s: System| {
                rows.iter().find(|r| r.gpus == gpus && r.system == s).and_then(|r| r.throughput)
            };
            let hf = get(System::HybridFlow).expect("hybridflow feasible");
            for b in [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner] {
                if let Some(bt) = get(b) {
                    assert!(hf > bt, "{b:?} at {gpus} GPUs: {bt} >= {hf}");
                }
            }
        }
    }

    #[test]
    fn speedups_are_reported_per_baseline() {
        let rows = e2e_throughput(AlgoKind::Ppo, &[ModelConfig::llama_7b()], 16);
        let sp = speedups(&rows);
        assert_eq!(sp.len(), 3);
        for (_, avg, max) in sp {
            assert!(avg > 1.0 && max >= avg);
        }
    }

    #[test]
    fn fig15_best_tg_is_interior_for_7b() {
        let rows = breakdown_16gpus(&ModelConfig::llama_7b());
        let best = rows
            .iter()
            .min_by(|a, b| (a.transition + a.generation).total_cmp(&(b.transition + b.generation)))
            .unwrap();
        assert!(best.tg == 2 || best.tg == 4, "best t_g = {}", best.tg);
        let t8 = rows.iter().find(|r| r.tg == 8).unwrap();
        assert!(t8.generation > best.generation);
    }

    #[test]
    fn fig15_13b_prefers_larger_tg_than_7b() {
        // §8.4: t_g = 2 best for 7B, t_g = 4 best for 13B.
        let best_of = |m: &ModelConfig| {
            breakdown_16gpus(m)
                .into_iter()
                .min_by(|a, b| {
                    (a.transition + a.generation).total_cmp(&(b.transition + b.generation))
                })
                .unwrap()
                .tg
        };
        assert!(best_of(&ModelConfig::llama_13b()) >= best_of(&ModelConfig::llama_7b()));
    }

    #[test]
    fn table2_matches_closed_forms() {
        let rows = table2(&ParallelSpec::new(1, 8, 2), 1, 2);
        assert!((rows[0].metrics.comm_volume - 15.0 / 16.0).abs() < 1e-9);
        assert!((rows[1].metrics.comm_volume - 7.0 / 8.0).abs() < 1e-9);
        assert!((rows[2].metrics.comm_volume - 6.0 / 16.0).abs() < 1e-9);
        assert_eq!(rows[2].metrics.redundancy, 0.0);
    }

    #[test]
    fn transition_rows_order_correctly() {
        let rows = transition_comparison(&[ModelConfig::llama_7b()]);
        let of = |s: System| rows.iter().find(|r| r.system == s).unwrap().seconds.unwrap();
        assert!(of(System::HybridFlow) < of(System::DeepSpeedChat));
        assert!(of(System::HybridFlow) < of(System::OpenRlhf));
    }

    #[test]
    fn placement_rows_include_all_variants() {
        let df =
            DataflowSpec::uniform(AlgoKind::Ppo, ModelConfig::llama_7b(), RlhfWorkload::paper());
        let rows = placement_comparison(&df, &[16]);
        assert_eq!(rows.len(), 4);
        let hf = rows.iter().find(|r| r.placement == "hybridflow").unwrap();
        for r in &rows {
            if let (Some(a), Some(b)) = (hf.throughput, r.throughput) {
                assert!(a >= b - 1e-9, "auto must match or beat {}", r.placement);
            }
        }
    }
}
