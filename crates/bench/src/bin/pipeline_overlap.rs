//! Generation/training overlap benchmark: the one-step-off-policy
//! pipelined PPO driver vs the synchronous barrier driver on split
//! placements, per-iteration latency and measured overlap.
//!
//! Writes the deterministic `BENCH_pipeline_overlap.json`. `--fast` runs
//! the CI smoke shape (one 8-GPU split configuration); without it the
//! full sweep adds the TP variant and the 16-GPU row.

use hf_bench::{fmt, pipeline};
use hf_insight::{flatten_json, Leaf};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let report = pipeline::build_report(fast);
    let text = report.render();
    let path = "BENCH_pipeline_overlap.json";
    std::fs::write(path, &text).expect("write report");

    let flat = flatten_json(&text).expect("report parses");
    let num = |key: &str| match flat.get(key) {
        Some(Leaf::Num(v)) => *v,
        _ => 0.0,
    };
    println!("== pipeline overlap ({}) ==", if fast { "fast" } else { "full" });
    let headers = ["config", "barrier s", "s=0 s", "s=1 s", "s=0 x", "s=1 x", "ovl frac"];
    let mut rows = Vec::new();
    for (i, cfg) in pipeline::sweep(fast).iter().enumerate() {
        let k = |suffix: &str| format!("configs[{i}].{suffix}");
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.3}", num(&k("barrier_iteration_s"))),
            format!("{:.3}", num(&k("staleness0.iteration_s"))),
            format!("{:.3}", num(&k("staleness1.iteration_s"))),
            format!("{:.2}", num(&k("staleness0.speedup"))),
            format!("{:.2}", num(&k("staleness1.speedup"))),
            format!("{:.3}", num(&k("staleness1.overlap_fraction"))),
        ]);
    }
    print!("{}", fmt::table(&headers, &rows));
    println!("wrote {path}");
}
