//! Table 2: transition overhead between training and generation for the
//! three actor-engine designs (fractions of model size M).

use hf_bench::{experiments, fmt, report};
use hf_parallel::ParallelSpec;

fn main() {
    println!("== Table 2: transition overhead (fractions of model size M) ==");
    for (spec, pg, tg) in [
        (ParallelSpec::new(1, 8, 2), 1usize, 2usize),
        (ParallelSpec::new(2, 4, 4), 1, 2),
        (ParallelSpec::new(4, 8, 4), 2, 2),
    ] {
        println!("training {spec}, generation {pg}-{tg}:");
        let rows = experiments::table2(&spec, pg, tg);
        let headers = ["engine", "comm volume", "peak memory", "redundancy"];
        let out: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.to_string(),
                    format!("{:.4} M", r.metrics.comm_volume),
                    format!("{:.4} M", r.metrics.peak_memory),
                    format!("{:.4} M", r.metrics.redundancy),
                ]
            })
            .collect();
        print!("{}", fmt::table(&headers, &out));
        report::maybe_write_json(&format!("table2 {spec} gen {pg} {tg}"), &headers, &out);
        println!();
    }
}
