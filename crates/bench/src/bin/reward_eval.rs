//! Verifier-pool reward-serving benchmark: pool-size scaling and the
//! tail-latency effect of straggler cancellation, on the seeded
//! virtual-time sandbox.
//!
//! Writes the deterministic `BENCH_reward_eval.json`. `--fast` runs the
//! CI smoke shape (two pool sizes per cost profile); without it the
//! full sweep covers 2–16 workers.

use hf_bench::{fmt, reward_eval};
use hf_insight::{flatten_json, Leaf};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let report = reward_eval::build_report(fast);
    let text = report.render();
    let path = "BENCH_reward_eval.json";
    std::fs::write(path, &text).expect("write report");

    let flat = flatten_json(&text).expect("report parses");
    let num = |key: &str| match flat.get(key) {
        Some(Leaf::Num(v)) => *v,
        _ => 0.0,
    };
    let int = |key: &str| match flat.get(key) {
        Some(Leaf::Num(v)) => *v as i64,
        _ => 0,
    };
    println!("== reward eval ({}) ==", if fast { "fast" } else { "full" });
    let headers =
        ["config", "makespan s", "p50 s", "p99 s", "occ", "timeouts", "retries", "p99 cut"];
    let mut rows = Vec::new();
    for (i, cfg) in reward_eval::sweep(fast).iter().enumerate() {
        let k = |suffix: &str| format!("configs[{i}].{suffix}");
        let reduction = if cfg.profile == "heavy_tail" {
            format!("{:.0}%", num(&k("p99_reduction")) * 100.0)
        } else {
            "-".into()
        };
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.4}", num(&k("cancel_on.makespan_s"))),
            format!("{:.4}", num(&k("cancel_on.p50_s"))),
            format!("{:.4}", num(&k("cancel_on.p99_s"))),
            format!("{:.2}", num(&k("cancel_on.mean_occupancy"))),
            format!("{}", int(&k("cancel_on.timeouts"))),
            format!("{}", int(&k("cancel_on.retries"))),
            reduction,
        ]);
    }
    print!("{}", fmt::table(&headers, &rows));
    println!("wrote {path}");
}
