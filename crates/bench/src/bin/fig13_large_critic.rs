//! Figure 13: placement comparison with a 13B actor/reference and 70B
//! critic/reward, 32–128 GPUs.

use hf_bench::{experiments, report};

fn main() {
    let rows = experiments::large_critic_comparison(&[32, 64, 96, 128]);
    report::placement_figure(&rows, "Figure 13: 13B actor + 70B critic/reward placements");
}
