//! Table 1: qualitative framework comparison plus an estimated stage
//! timeline of one PPO iteration per system.

use hf_bench::experiments;
use hf_mapping::{AlgoKind, DataflowSpec};
use hf_modelspec::{ModelConfig, RlhfWorkload};

fn main() {
    println!("== Table 1: RLHF framework comparison ==\n");
    let facts = [
        ("DeepSpeed-Chat", "ZeRO train / TP gen", "full-cluster reshard", "colocate all"),
        ("OpenRLHF", "ZeRO train / TP gen", "two weight copies + sync", "standalone"),
        ("NeMo-Aligner", "3D train = 3D gen", "shared weights (no KV cache)", "split"),
        ("HybridFlow", "3D/ZeRO/FSDP train, 3D gen", "zero-redundancy reshard", "any placement"),
    ];
    for (name, par, weights, placement) in facts {
        println!("{name:>15}: parallelism {par}; actor weights: {weights}; placement: {placement}");
    }
    println!("\nEstimated one-iteration stage timeline (7B models, 16 GPUs):");
    let df = DataflowSpec::uniform(AlgoKind::Ppo, ModelConfig::llama_7b(), RlhfWorkload::paper());
    for (sys, est) in experiments::stage_breakdown(&df, 16) {
        match est {
            Some(e) => {
                let total = e.total();
                let bar = |x: f64| "#".repeat(((x / total) * 40.0).round() as usize);
                println!(
                    "{:>15}: total {:7.1}s | gen {:6.1}s {} | prep {:6.1}s {} | train {:6.1}s {}",
                    sys.label(),
                    total,
                    e.generation,
                    bar(e.generation),
                    e.preparation,
                    bar(e.preparation),
                    e.training,
                    bar(e.training),
                );
            }
            None => println!("{:>15}: OOM", sys.label()),
        }
    }
}
