//! §8.2 headline numbers: HybridFlow speedups over each baseline and
//! strong-scaling efficiency, across all three algorithms.

use hf_bench::experiments;
use hf_mapping::AlgoKind;
use hf_modelspec::ModelConfig;

fn main() {
    let mut all_ratios: Vec<f64> = Vec::new();
    for (algo, name) in
        [(AlgoKind::Ppo, "PPO"), (AlgoKind::ReMax, "ReMax"), (AlgoKind::SafeRlhf, "Safe-RLHF")]
    {
        println!("== {name} ==");
        let rows = experiments::e2e_throughput(algo, &ModelConfig::paper_sizes(), 128);
        for (base, avg, max) in experiments::speedups(&rows) {
            println!("  vs {:<15} avg {avg:.2}x  max {max:.2}x", base.label());
            all_ratios.push(avg);
        }
        if let Some(eff) = experiments::scaling_efficiency(&rows) {
            println!("  strong-scaling efficiency: {:.1}%", eff * 100.0);
        }
    }
    let lo = all_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = all_ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\noverall average-speedup range: {lo:.2}x – {hi:.2}x (paper: 1.53x–20.57x point range)"
    );
}
