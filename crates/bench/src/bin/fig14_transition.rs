//! Figure 14: transition time between actor training and generation
//! across model scales and systems.

use hf_baselines::System;
use hf_bench::{experiments, fmt, report};
use hf_modelspec::ModelConfig;

fn main() {
    println!("== Figure 14: transition time between training and generation ==");
    let rows = experiments::transition_comparison(&ModelConfig::paper_sizes());
    let mut models: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    models.dedup();
    let headers = ["model", "gpus", "DS-Chat", "OpenRLHF", "HybridFlow", "reduction"];
    let mut out = Vec::new();
    for (model, gpus) in models {
        let get = |s: System| {
            rows.iter().find(|r| r.model == model && r.system == s).and_then(|r| r.seconds)
        };
        let hf = get(System::HybridFlow);
        let worst = [get(System::DeepSpeedChat), get(System::OpenRlhf)]
            .into_iter()
            .flatten()
            .fold(f64::NAN, f64::max);
        let red = match (hf, worst.is_nan()) {
            (Some(h), false) => format!("{:.1}%", (1.0 - h / worst) * 100.0),
            _ => "-".into(),
        };
        out.push(vec![
            model.clone(),
            gpus.to_string(),
            fmt::secs(get(System::DeepSpeedChat)),
            fmt::secs(get(System::OpenRlhf)),
            fmt::secs(get(System::HybridFlow)),
            red,
        ]);
    }
    print!("{}", fmt::table(&headers, &out));
    report::maybe_write_json("fig14 transition", &headers, &out);
}
