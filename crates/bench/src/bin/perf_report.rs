//! The perf regression gate binary.
//!
//! Runs the insight sweep (functional PPO iterations on the simulated
//! cluster, traced and analyzed), prints a critical-path summary, and
//! writes the deterministic `BENCH_perf_report.json`.
//!
//! Flags:
//!
//! * `--fast` — the CI shape: 8 GPUs, two generation TPs, one measured
//!   iteration each. Without it, the full 16-GPU Figure 15 `t_g` sweep.
//! * `--check` — additionally diff the fresh report against the
//!   committed baseline (`crates/bench/baselines/perf_report_fast.json`)
//!   and exit non-zero on drift. Requires `--fast`: the baseline covers
//!   the fast sweep. To land an intentional perf change, regenerate the
//!   baseline by copying the fresh report over the committed file.

use hf_bench::{fmt, perf};
use hf_insight::{flatten_json, Leaf};

fn leaf_num(flat: &std::collections::BTreeMap<String, Leaf>, key: &str) -> Option<f64> {
    match flat.get(key) {
        Some(Leaf::Num(v)) => Some(*v),
        _ => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let do_check = args.iter().any(|a| a == "--check");
    if do_check && !fast {
        eprintln!("--check requires --fast: the committed baseline covers the fast sweep");
        std::process::exit(2);
    }

    let report = perf::build_report(fast);
    let text = report.render();
    let path = "BENCH_perf_report.json";
    std::fs::write(path, &text).expect("write report");

    // Human-readable summary off the same bytes the gate compares.
    let flat = flatten_json(&text).expect("report parses");
    println!("== perf report ({}) ==", if fast { "fast" } else { "full" });
    // "overlap s" is the what-if *bound* (perfect gen/train overlap);
    // "meas ovl s" is what the staleness-1 pipelined driver actually
    // claimed of it on the same placement.
    let headers = [
        "config",
        "iter s",
        "exec s",
        "trans s",
        "queue s",
        "zero-trans s",
        "overlap s",
        "pipe iter s",
        "meas ovl s",
    ];
    let mut rows = Vec::new();
    for (i, cfg) in perf::sweep(fast).iter().enumerate() {
        let k = |suffix: &str| format!("configs[{i}].iterations[0].{suffix}");
        let num = |suffix: &str| leaf_num(&flat, &k(suffix)).unwrap_or(0.0);
        let pnum = |suffix: &str| {
            leaf_num(&flat, &format!("configs[{i}].pipeline.{suffix}")).unwrap_or(0.0)
        };
        rows.push(vec![
            cfg.name.clone(),
            format!("{:.3}", num("duration_s")),
            format!("{:.3}", num("critical_path_by_kind_s.exec")),
            format!("{:.3}", num("critical_path_by_kind_s.transition")),
            format!("{:.3}", num("critical_path_by_kind_s.queue_wait")),
            format!("{:.3}", num("what_if.zero_cost_transition_s")),
            format!("{:.3}", num("what_if.full_gen_train_overlap_s")),
            format!("{:.3}", pnum("iteration_s")),
            format!("{:.3}", pnum("overlap_measured_s")),
        ]);
    }
    print!("{}", fmt::table(&headers, &rows));
    println!("wrote {path}");

    if do_check {
        let bp = perf::baseline_path();
        let baseline = match std::fs::read_to_string(&bp) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", bp.display());
                std::process::exit(1);
            }
        };
        match perf::check(&text, &baseline) {
            Ok(()) => {
                println!("check: within {:.0}% of {}", perf::CHECK_REL_TOL * 100.0, bp.display())
            }
            Err(diffs) => {
                eprintln!("check: report drifted from {} ({} diffs):", bp.display(), diffs.len());
                for d in &diffs {
                    eprintln!("  {d}");
                }
                eprintln!(
                    "if intentional, regenerate the baseline: \
                     `perf_report --fast` then copy {path} over it"
                );
                std::process::exit(1);
            }
        }
    }
}
