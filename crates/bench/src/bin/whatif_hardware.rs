//! What-if hardware study (beyond the paper; exercises the §6 note that
//! the mapping algorithm extends to other devices by swapping the
//! simulator's GPU spec): predicted HybridFlow PPO throughput on
//! A100-80G vs A100-40G vs H100 clusters.

use hf_baselines::{estimate, System};
use hf_bench::{fmt, report};
use hf_mapping::{AlgoKind, DataflowSpec};
use hf_modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hf_simcluster::{ClusterSpec, GpuSpec};

fn cluster(kind: &str, gpus: usize) -> ClusterSpec {
    match kind {
        "A100-80G" => ClusterSpec::a100_with_gpus(gpus),
        "A100-40G" => {
            let mut c = ClusterSpec::a100_with_gpus(gpus);
            c.gpu = GpuSpec::a100_40g();
            c
        }
        "H100" => ClusterSpec::h100_with_gpus(gpus),
        other => panic!("unknown hardware {other}"),
    }
}

fn main() {
    println!("== What-if: HybridFlow PPO throughput across GPU generations ==");
    let headers = ["model", "gpus", "A100-40G", "A100-80G", "H100", "H100 vs 80G"];
    let mut rows = Vec::new();
    for (model, gpus) in [
        (ModelConfig::llama_7b(), 16usize),
        (ModelConfig::llama_13b(), 32),
        (ModelConfig::llama_70b(), 64),
    ] {
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
        let tp_of = |kind: &str| {
            let perf = PerfModel::new(cluster(kind, gpus));
            estimate(System::HybridFlow, &perf, &df, gpus).map(|e| e.throughput(&df))
        };
        let a40 = tp_of("A100-40G");
        let a80 = tp_of("A100-80G");
        let h100 = tp_of("H100");
        let ratio = match (h100, a80) {
            (Some(h), Some(a)) => format!("{:.2}x", h / a),
            _ => "-".into(),
        };
        rows.push(vec![
            model.name.clone(),
            gpus.to_string(),
            fmt::tp(a40),
            fmt::tp(a80),
            fmt::tp(h100),
            ratio,
        ]);
    }
    print!("{}", fmt::table(&headers, &rows));
    report::maybe_write_json("whatif hardware", &headers, &rows);
    println!("(expected: 40G forces larger model-parallel sizes or OOMs outright;");
    println!(" H100's 3.2x FLOPs and 1.7x HBM bandwidth lift throughput 2-3x)");
}
