//! Multi-tenant serving benchmark: latency-vs-load curves for the
//! three standard tenant mixes plus the co-located serve+train
//! scenario with its pinned top-tier p99 protection factor.
//!
//! Writes the deterministic `BENCH_serve_slo.json`. `--fast` runs the
//! CI smoke shape (4 load points); without it the ladder adds a
//! deep-saturation point.

use hf_bench::{fmt, serve_slo};
use hf_insight::{flatten_json, Leaf};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let report = serve_slo::build_report(fast);
    let text = report.render();
    let path = "BENCH_serve_slo.json";
    std::fs::write(path, &text).expect("write report");

    let flat = flatten_json(&text).expect("report parses");
    let num = |key: &str| match flat.get(key) {
        Some(Leaf::Num(v)) => *v,
        _ => 0.0,
    };
    let str_of = |key: &str| match flat.get(key) {
        Some(Leaf::Str(s)) => s.clone(),
        _ => String::new(),
    };

    println!("== serve_slo ({}) ==", if fast { "fast" } else { "full" });
    let n_loads = serve_slo::load_points(fast).len();
    for (m, spec) in serve_slo::mix_specs().iter().enumerate() {
        println!("-- mix {} --", spec.name);
        let headers =
            ["tenant", "load", "done", "shed", "p50 ttft", "p99 ttft", "slo att", "tok/s"];
        let mut rows = Vec::new();
        for c in 0..n_loads {
            for t in 0..spec.tenants.len() {
                let k = |s: &str| format!("mixes[{m}].curve[{c}].report.tenants[{t}].{s}");
                rows.push(vec![
                    str_of(&k("name")),
                    format!("{:.1}", num(&format!("mixes[{m}].curve[{c}].load"))),
                    format!("{}", num(&k("completed"))),
                    format!("{}", num(&k("shed_pressure")) + num(&k("shed_budget"))),
                    format!("{:.4}", num(&k("p50_ttft_s"))),
                    format!("{:.4}", num(&k("p99_ttft_s"))),
                    format!("{:.3}", num(&k("slo_attainment"))),
                    format!("{:.1}", num(&k("tokens_per_s"))),
                ]);
            }
        }
        print!("{}", fmt::table(&headers, &rows));
    }

    println!("-- colocated (tiered mix, load {:.1}) --", num("colocated.load"));
    println!(
        "train: {} iterations, mean score {:.4}; profile {} segments over {:.1}s window",
        num("colocated.train.iterations"),
        num("colocated.train.mean_score"),
        num("colocated.profile_segments"),
        num("colocated.train_window_s"),
    );
    let headers = ["tenant", "colo p99", "base p99", "colo att", "base att"];
    let mut rows = Vec::new();
    for t in 0..3 {
        let c = |s: &str| format!("colocated.colocated.tenants[{t}].{s}");
        let b = |s: &str| format!("colocated.serve_only.tenants[{t}].{s}");
        rows.push(vec![
            str_of(&c("name")),
            format!("{:.4}", num(&c("p99_ttft_s"))),
            format!("{:.4}", num(&b("p99_ttft_s"))),
            format!("{:.3}", num(&c("slo_attainment"))),
            format!("{:.3}", num(&b("slo_attainment"))),
        ]);
    }
    print!("{}", fmt::table(&headers, &rows));
    println!(
        "top-tier p99 ratio: {:.3} (limit {:.2})",
        num("colocated.top_p99_ratio"),
        num("colocated.top_p99_factor_limit"),
    );
    println!("wrote {path}");
}
