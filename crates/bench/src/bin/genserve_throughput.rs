//! Generation-engine throughput: sequential per-sequence decoding (one
//! `TinyLm::generate` call per request, the NeMo-Aligner-style baseline)
//! vs. hf-genserve's paged-KV continuous batching, at two batch sizes
//! and two cache budgets. The tight budget is sized to force
//! preemption-by-recompute mid-run, so the speedup it reports is the
//! one that survives cache pressure.
//!
//! `--fast` shrinks the token counts for CI smoke runs; `--json`
//! additionally writes `BENCH_genserve_throughput.json`.

use std::time::Instant;

use hf_bench::{fmt, report};
use hf_genserve::{GenConfig, GenRequest, GenServer};
use hf_nn::{LmConfig, TinyLm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prompts(batch: usize, prompt_len: usize, vocab: usize) -> Vec<Vec<usize>> {
    // Distinct deterministic prompts so prefix sharing cannot flatter
    // the engine: every token the engine serves, it computed.
    (0..batch)
        .map(|row| (0..prompt_len).map(|j| (row * 131 + j * 7 + 1) % vocab).collect())
        .collect()
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    // Sized so the weights (~13 MB) overflow on-core caches: each
    // sequential decode step re-streams them from memory, while the
    // batched step streams them once for every active lane — the same
    // arithmetic-intensity argument that makes continuous batching pay
    // on real accelerators.
    let cfg = LmConfig { vocab: 256, hidden: 256, ffn: 1024, layers: 6 };
    let lm = TinyLm::new(cfg, 7);
    let prompt_len = 24;
    let max_new = if fast { 32 } else { 96 };
    let block_tokens = 8;
    let slot_bytes = lm.decode_start().snapshot_len() * 4;
    let block_bytes = block_tokens * slot_bytes;
    // Blocks one sequence occupies when run to completion (the final
    // sampled token is never fed back, hence the −1).
    let per_seq_blocks = (prompt_len + max_new - 1usize).div_ceil(block_tokens);

    println!("== genserve throughput: continuous batching vs sequential decode ==");
    println!(
        "model {} params, prompt {prompt_len}, max_new {max_new}, block {block_tokens} slots",
        cfg.param_count()
    );

    let headers = [
        "batch",
        "budget",
        "blocks",
        "preemptions",
        "steps",
        "baseline tok/s",
        "genserve tok/s",
        "speedup",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &batch in &[16usize, 64] {
        let reqs: Vec<GenRequest> = prompts(batch, prompt_len, cfg.vocab)
            .into_iter()
            .map(|prompt| GenRequest {
                prompt,
                max_new_tokens: max_new,
                temperature: 0.0,
                seed: 0,
                stop_tokens: Vec::new(),
            })
            .collect();

        // Sequential baseline: each request decoded alone, start to end.
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(0);
        let baseline: Vec<Vec<usize>> =
            reqs.iter().map(|r| lm.generate(&r.prompt, r.max_new_tokens, 0.0, &mut rng)).collect();
        let base_secs = t0.elapsed().as_secs_f64();
        let tokens = (batch * max_new) as f64;
        let base_tps = tokens / base_secs;

        // Ample: every sequence can hold its full footprint at once.
        // Tight: half that, so the pool runs dry mid-decode and the
        // scheduler must preempt.
        let ample = batch * per_seq_blocks;
        let tight = (ample / 2).max(per_seq_blocks);
        for (label, blocks) in [("ample", ample), ("tight", tight)] {
            let server = {
                let mut s = GenServer::new(GenConfig {
                    block_tokens,
                    cache_budget_bytes: blocks * block_bytes,
                    max_batch: batch,
                    ..GenConfig::default()
                });
                s.install_weights(&lm);
                s
            };
            let t0 = Instant::now();
            let (outs, rep) = server.generate(&reqs).expect("generate");
            let secs = t0.elapsed().as_secs_f64();
            for (out, base) in outs.iter().zip(&baseline) {
                assert_eq!(&out.tokens, base, "engine output must match sequential decode");
            }
            if label == "tight" {
                assert!(
                    rep.preemptions > 0,
                    "tight budget ({blocks} blocks) was expected to force preemption"
                );
            }
            let tps = tokens / secs;
            rows.push(vec![
                batch.to_string(),
                label.to_string(),
                blocks.to_string(),
                rep.preemptions.to_string(),
                rep.steps.to_string(),
                format!("{base_tps:.0}"),
                format!("{tps:.0}"),
                format!("{:.2}x", tps / base_tps),
            ]);
        }
    }
    print!("{}", fmt::table(&headers, &rows));
    report::maybe_write_json("genserve throughput", &headers, &rows);
}
