//! Figure 11: Safe-RLHF throughput (extra cost model + pre-train loss).

fn main() {
    hf_bench::report::throughput_figure(
        hf_mapping::AlgoKind::SafeRlhf,
        "Figure 11: Safe-RLHF throughput",
    );
}
