//! Figure 9: PPO throughput across model sizes and cluster scales.

fn main() {
    hf_bench::report::throughput_figure(hf_mapping::AlgoKind::Ppo, "Figure 9: PPO throughput");
}
