//! Pruned/parallel auto-mapping search vs the exhaustive sequential
//! reference: wall-clock speedup and cost-equality check over the
//! Figure 16 scale ladder (model size and cluster size grow together,
//! default allocation granularity).
//!
//! Flags: `--fast` (fewer repetitions, for CI smoke runs), `--json`
//! (write `BENCH_mapping_search.json`).

use std::time::Instant;

use hf_bench::{experiments, fmt, report};
use hf_mapping::{AlgoKind, DataflowSpec, Mapper};
use hf_modelspec::{ModelConfig, RlhfWorkload};

/// Median wall-clock seconds of `run` over `reps` fresh repetitions.
fn median_secs<T>(reps: usize, mut run: impl FnMut() -> T) -> (f64, T) {
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        last = Some(run());
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], last.expect("reps > 0"))
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let reps = if fast { 5 } else { 50 };
    println!("== auto-mapping search: pruned/parallel vs exhaustive sequential ==");
    println!("(median of {reps} runs each; fresh mapper per run — cold caches)");

    let settings = [
        (ModelConfig::llama_7b(), 16usize),
        (ModelConfig::llama_13b(), 32),
        (ModelConfig::llama_34b(), 64),
        (ModelConfig::llama_70b(), 128),
    ];
    let headers = [
        "model",
        "gpus",
        "sequential",
        "pruned",
        "speedup",
        "evals seq",
        "evals pruned",
        "pruned out",
    ];
    let mut out = Vec::new();
    for (model, gpus) in settings {
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
        let make = || Mapper::new(experiments::perf(gpus), df.clone(), gpus);

        let (seq_s, seq_result) = median_secs(reps, || {
            let m = make();
            let best = m.search_sequential();
            (best, m.stats())
        });
        let (par_s, par_result) = median_secs(reps, || {
            let m = make();
            let best = m.search();
            (best, m.stats())
        });

        let (seq_best, seq_stats) = seq_result;
        let (par_best, par_stats) = par_result;
        let (seq_best, par_best) = (
            seq_best.expect("sequential search must find a mapping"),
            par_best.expect("pruned search must find a mapping"),
        );
        assert_eq!(
            seq_best.costs.total().to_bits(),
            par_best.costs.total().to_bits(),
            "{} on {gpus} GPUs: pruned search must return the exhaustive-optimal cost",
            model.name
        );
        assert!(par_stats.pruned > 0, "{} on {gpus} GPUs: bound must prune", model.name);

        out.push(vec![
            model.name.clone(),
            gpus.to_string(),
            format!("{:.1}us", seq_s * 1e6),
            format!("{:.1}us", par_s * 1e6),
            format!("{:.2}x", seq_s / par_s),
            seq_stats.evaluations.to_string(),
            par_stats.evaluations.to_string(),
            par_stats.pruned.to_string(),
        ]);
    }
    print!("{}", fmt::table(&headers, &out));
    report::maybe_write_json("mapping search", &headers, &out);
    println!("(costs verified bit-identical between the two searches at every point)");
}
