//! Cross-layout differential conformance sweep (`hf-audit` §tentpole):
//! samples ≥200 `(p,t,d) × (p_g,t_g) × {vanilla,strided} ×
//! {ZeRO,replicated}` configurations, runs each for real, and asserts
//! byte-exact agreement with the `1-1-1` single-device reference —
//! weights, Adam moments, logprobs, and generated token streams. Any
//! divergence is shrunk to a minimal failing configuration and the
//! binary exits non-zero.
//!
//! Also guards the paged-KV block allocator's complexity: FIFO eviction
//! through the reclaim queue must stay O(1) amortized (the old
//! `Vec::remove(0)` path was O(n) per alloc), checked by comparing
//! ns/alloc across an 8× pool-size spread.
//!
//! `--fast` shrinks the sample for CI smoke runs; `--json` additionally
//! writes `BENCH_audit_sweep.json`.

use std::time::Instant;

use hf_audit::{sample_configs, sweep};
use hf_bench::{fmt, report};
use hf_genserve::BlockManager;

/// ns/alloc under reclaim-queue churn: every block is registered in the
/// prefix cache and released, so each `alloc` must evict through the
/// FIFO queue — the path that used to linear-scan.
fn churn_ns_per_alloc(blocks: usize, churn: usize) -> f64 {
    // slot_floats = 1, block_tokens = 1 → 4 bytes/block.
    let mut bm = BlockManager::new(1, 1, blocks * 4);
    let mut owned = Vec::with_capacity(blocks);
    while let Some(b) = bm.alloc() {
        owned.push(b);
    }
    for (i, &b) in owned.iter().enumerate() {
        bm.register_prefix(b, &[i]);
        bm.release(b);
    }
    let mut best = f64::INFINITY;
    for rep in 0..3 {
        let start = Instant::now();
        for i in 0..churn {
            let b = bm.alloc().expect("reclaimable pool never empties");
            bm.register_prefix(b, &[blocks + rep * churn + i]);
            bm.release(b);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / churn as f64);
    }
    best
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let (n, max_world, label) = if fast { (24, 4, "fast") } else { (208, 8, "full") };

    println!("== audit sweep ({label}: {n} sampled configs, world <= {max_world}) ==");
    let configs = sample_configs(n, max_world, 0x5EED);
    let wall = Instant::now();
    let mut done = 0usize;
    let report_out = sweep(&configs, 2, |cfg, ok| {
        done += 1;
        if !ok {
            println!("  DIVERGED {}", cfg.label());
        } else if done.is_multiple_of(32) {
            println!("  ... {done}/{n} configs checked");
        }
    });
    let secs = wall.elapsed().as_secs_f64();

    let headers = vec!["config", "world", "ok"];
    let mut rows: Vec<Vec<String>> = configs
        .iter()
        .map(|c| {
            let ok = !report_out.divergences.iter().any(|d| d.config == *c);
            vec![c.label(), c.world().to_string(), ok.to_string()]
        })
        .collect();

    for d in &report_out.divergences {
        println!("DIVERGENCE {}: {}", d.config.label(), d.detail);
        if let Some(m) = d.minimal {
            println!("  minimal failing config: {}", m.label());
        }
    }
    println!(
        "{} runs (incl. references) over {n} sampled configs in {secs:.1}s: {}",
        report_out.checked,
        if report_out.clean() { "all byte-identical to the 1-1-1 reference" } else { "DIVERGED" },
    );

    // Block-allocator complexity guard (satellite: FIFO eviction must be
    // O(1) amortized; the pre-fix linear scan scales ns/alloc with pool
    // size). 8× the pool → per-alloc cost must stay within noise, far
    // below the 8× an O(n) eviction would show.
    let small = churn_ns_per_alloc(4096, 50_000);
    let large = churn_ns_per_alloc(32_768, 50_000);
    let ratio = large / small;
    println!(
        "block alloc churn: {small:.1} ns/alloc @4096 blocks, {large:.1} ns/alloc @32768 \
         blocks (x{ratio:.2})"
    );
    rows.push(vec!["block-alloc-ns-4096".into(), "-".into(), format!("{small:.1}")]);
    rows.push(vec!["block-alloc-ns-32768".into(), "-".into(), format!("{large:.1}")]);

    print!("{}", fmt::table(&headers, &rows[rows.len() - 2..]));
    report::maybe_write_json("audit sweep", &headers, &rows);

    assert!(
        report_out.clean(),
        "{} configuration(s) diverged from the reference",
        report_out.divergences.len()
    );
    assert!(
        ratio < 4.0,
        "block eviction no longer O(1) amortized: ns/alloc grew x{ratio:.2} for an 8x pool"
    );
}
