//! Figure 16: device-mapping algorithm runtime, scaling model size and
//! cluster size together.

use hf_bench::{experiments, fmt, report};

fn main() {
    println!("== Figure 16: auto-mapping algorithm runtime ==");
    let rows = experiments::mapping_runtime();
    let headers = ["model", "gpus", "runtime", "(plan,alloc) evals", "pruned", "cache hit rate"];
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gpus.to_string(),
                format!("{:.3}s", r.seconds),
                r.evaluations.to_string(),
                r.pruned.to_string(),
                format!("{:.1}%", r.cache_hit_rate * 100.0),
            ]
        })
        .collect();
    print!("{}", fmt::table(&headers, &out));
    report::maybe_write_json("fig16 mapping runtime", &headers, &out);
    println!("(paper: linear growth, ≤ half an hour with caching)");
}
