//! Fault-recovery cost: for a sweep of checkpoint intervals, run the
//! same 4-iteration PPO job twice — fault-free, and with a seeded kill
//! of an actor rank mid-run — and report the checkpoint overhead, the
//! virtual mean-time-to-recover (respawn + sharded restore), and the
//! rolled-back work the interval choice forfeits. Every faulted run must
//! end **bit-identical** to its fault-free twin (parameters, both Adam
//! moments, optimizer step, RNG round); the binary asserts it.
//!
//! `--fast` shrinks the batch for CI smoke runs; `--json` additionally
//! writes `BENCH_fault_recovery.json`.

use std::sync::Arc;

use hf_bench::{fmt, report};
use hf_core::{Controller, WorkerLayout};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_resilience::{CheckpointStore, FaultInjector, FaultPlan, FaultTrigger};
use hf_rlhf::{run_recoverable, Placement, RecoveryConfig, RecoveryReport, RlhfConfig, RlhfSystem};
use hf_simcluster::{ClusterSpec, CommCostModel, ResourcePool};
use hf_telemetry::Telemetry;

const ITERATIONS: usize = 4;
const INTERVALS: [usize; 3] = [1, 2, 4];

fn build_system(fault: Option<Arc<FaultInjector>>) -> (Controller, RlhfSystem) {
    let ctrl = match fault {
        Some(f) => Controller::with_faults(
            ClusterSpec::a100_with_gpus(4),
            CommCostModel::default(),
            Telemetry::enabled(),
            f,
        ),
        None => Controller::new(ClusterSpec::a100_with_gpus(4)),
    };
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 4),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let sys = RlhfSystem::build(&ctrl, &placement, RlhfConfig::tiny()).unwrap();
    (ctrl, sys)
}

fn fresh_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("hf-bench-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir).unwrap()
}

fn run(
    store: &CheckpointStore,
    every: usize,
    batch: usize,
    fault: Option<Arc<FaultInjector>>,
) -> RecoveryReport {
    let cfg = RecoveryConfig {
        iterations: ITERATIONS,
        checkpoint_every: every,
        batch,
        ..RecoveryConfig::default()
    };
    run_recoverable(store, &cfg, move |_epoch| Ok(build_system(fault.clone())))
        .expect("recoverable run must complete")
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let batch = if fast { 4 } else { 8 };

    println!("== fault recovery: checkpoint interval vs overhead, MTTR, and rollback ==");
    println!(
        "{ITERATIONS}-iteration PPO on 4 GPUs (p1 t2 d2, critic colocated), batch {batch}; \
         kill: actor rank 2 on `update_actor` call 3"
    );

    let headers = [
        "interval",
        "ckpts",
        "base ms",
        "fault ms",
        "overhead %",
        "mttr ms",
        "lost ms",
        "identical",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for every in INTERVALS {
        let base_store = fresh_store(&format!("base-{every}"));
        let base = run(&base_store, every, batch, None);
        assert_eq!(base.stats.failures, 0, "baseline must be fault-free");

        let injector = FaultInjector::new(FaultPlan::new().kill_rank(
            "actor",
            2,
            FaultTrigger::OnCall { method: "update_actor".into(), nth: 3 },
        ));
        let fault_store = fresh_store(&format!("fault-{every}"));
        let faulted = run(&fault_store, every, batch, Some(injector.clone()));
        assert_eq!(injector.fired_count(), 1, "the planned kill must fire: {:?}", injector.log());
        assert!(faulted.stats.recoveries >= 1, "faulted run must recover");

        let final_step = ITERATIONS as u64;
        let baseline_state = base_store.load_group(final_step, "actor").unwrap();
        let recovered_state = fault_store.load_group(final_step, "actor").unwrap();
        let identical = baseline_state == recovered_state;
        assert!(identical, "interval {every}: recovered run diverged from the fault-free run");

        let ckpts = ITERATIONS.div_ceil(every) + 1; // boundary saves + the initial step-0 save
        let overhead = (faulted.virtual_time_s - base.virtual_time_s) / base.virtual_time_s * 100.0;
        rows.push(vec![
            format!("{every}"),
            format!("{ckpts}"),
            format!("{:.3}", base.virtual_time_s * 1e3),
            format!("{:.3}", faulted.virtual_time_s * 1e3),
            format!("{overhead:.1}"),
            format!("{:.3}", faulted.stats.mean_mttr_s() * 1e3),
            format!("{:.3}", faulted.stats.virtual_time_lost * 1e3),
            format!("{identical}"),
        ]);
    }

    print!("{}", fmt::table(&headers, &rows));
    println!("every faulted run restored to a state bit-identical to its fault-free twin");
    report::maybe_write_json("fault recovery", &headers, &rows);
}
