//! Figure 10: ReMax throughput (no critic; NeMo-Aligner unsupported).

fn main() {
    hf_bench::report::throughput_figure(hf_mapping::AlgoKind::ReMax, "Figure 10: ReMax throughput");
}
