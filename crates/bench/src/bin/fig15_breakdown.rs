//! Figure 15: transition + generation time vs generation TP size on 16
//! GPUs (training layout 1-8-2, p_g = 1, d_g = 8/t_g).
//!
//! `--measured` additionally runs a functional tiny-model PPO iteration
//! per t_g with telemetry enabled and reports the breakdown recorded by
//! the runtime's spans beside the analytical rows.

use hf_bench::{experiments, fmt, report};
use hf_modelspec::ModelConfig;

fn main() {
    let measured = std::env::args().any(|a| a == "--measured");
    println!("== Figure 15: time breakdown vs generation TP size (16 GPUs, train 1-8-2) ==");
    let headers = ["model", "t_g", "transition", "generation", "total", "KV waves"];
    for model in [ModelConfig::llama_7b(), ModelConfig::llama_13b()] {
        let rows = experiments::breakdown_16gpus(&model);
        let best = rows
            .iter()
            .min_by(|a, b| (a.transition + a.generation).total_cmp(&(b.transition + b.generation)))
            .map(|r| r.tg)
            .unwrap();
        let out: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{}{}", r.tg, if r.tg == best { "*" } else { "" }),
                    fmt::secs(Some(r.transition)),
                    fmt::secs(Some(r.generation)),
                    fmt::secs(Some(r.transition + r.generation)),
                    r.waves.to_string(),
                ]
            })
            .collect();
        print!("{}", fmt::table(&headers, &out));
        report::maybe_write_json(&format!("fig15 breakdown {}", model.name), &headers, &out);
        println!("(* best t_g; paper: t_g=2 best for 7B, t_g=4 for 13B, t_g=8 worst)\n");
    }

    if measured {
        println!("== measured: functional tiny-model PPO iteration, telemetry spans ==");
        println!(
            "(virtual seconds from the real runtime; tiny model, so compare trends, not scale)"
        );
        let headers = ["t_g", "transition", "generation", "preparation", "training", "bytes/GPU"];
        let rows = experiments::measured_breakdown_16gpus(&[1, 2, 4, 8]);
        let ms = |s: f64| format!("{:.4}ms", s * 1e3);
        let out: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.tg.to_string(),
                    ms(r.transition),
                    ms(r.generation),
                    ms(r.preparation),
                    ms(r.training),
                    r.transition_bytes_per_gpu.to_string(),
                ]
            })
            .collect();
        print!("{}", fmt::table(&headers, &out));
        report::maybe_write_json("fig15 breakdown measured", &headers, &out);
        println!("(transition bytes/GPU fall as t_g grows toward the training TP size,");
        println!(" vanishing at t_g = 8 where micro-DP groups are singletons — Table 2)");
    }
}
