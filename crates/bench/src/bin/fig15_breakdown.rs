//! Figure 15: transition + generation time vs generation TP size on 16
//! GPUs (training layout 1-8-2, p_g = 1, d_g = 8/t_g).

use hf_bench::{experiments, fmt};
use hf_modelspec::ModelConfig;

fn main() {
    println!("== Figure 15: time breakdown vs generation TP size (16 GPUs, train 1-8-2) ==");
    let headers = ["model", "t_g", "transition", "generation", "total", "KV waves"];
    for model in [ModelConfig::llama_7b(), ModelConfig::llama_13b()] {
        let rows = experiments::breakdown_16gpus(&model);
        let best = rows
            .iter()
            .min_by(|a, b| (a.transition + a.generation).total_cmp(&(b.transition + b.generation)))
            .map(|r| r.tg)
            .unwrap();
        let out: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{}{}", r.tg, if r.tg == best { "*" } else { "" }),
                    fmt::secs(Some(r.transition)),
                    fmt::secs(Some(r.generation)),
                    fmt::secs(Some(r.transition + r.generation)),
                    r.waves.to_string(),
                ]
            })
            .collect();
        print!("{}", fmt::table(&headers, &out));
        println!("(* best t_g; paper: t_g=2 best for 7B, t_g=4 for 13B, t_g=8 worst)\n");
    }
}
