//! Figure 12: HybridFlow throughput under different model placements
//! (colocate / standalone / split / Algorithm 1 optimum), 13B & 34B,
//! 16–128 GPUs.

use hf_bench::{experiments, report};
use hf_mapping::{AlgoKind, DataflowSpec};
use hf_modelspec::{ModelConfig, RlhfWorkload};

fn main() {
    let mut rows = Vec::new();
    for (model, sizes) in [
        (ModelConfig::llama_13b(), vec![16usize, 32, 64, 96, 128]),
        (ModelConfig::llama_34b(), vec![32usize, 64, 96, 128]),
    ] {
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model, RlhfWorkload::paper());
        rows.extend(experiments::placement_comparison(&df, &sizes));
    }
    report::placement_figure(&rows, "Figure 12: throughput under different placements");
}
