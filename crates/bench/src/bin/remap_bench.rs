//! Elastic re-mapping cost: MTTR-vs-world curves. For a sweep of
//! cluster sizes, run the same 4-iteration PPO job with a seeded kill
//! of an actor rank mid-run and let the elastic loop re-place the job
//! onto the survivors (`hf_rlhf::remap_recoverable`): re-run the
//! device-mapping search, reshard the last committed checkpoint live
//! through the restore broadcast, continue on the shrunken world. The
//! table reports what the re-map cost — blackout (detection to training
//! resumed), the reshard leg of it, bytes broadcast, and the rolled-back
//! virtual work.
//!
//! Every figure is virtual-time deterministic: mapping-search *wall*
//! seconds are deliberately excluded (they never touch the virtual
//! clock), so `--json` output is byte-identical across reruns — CI
//! asserts exactly that.
//!
//! `--fast` shrinks the batch and the sweep for CI smoke runs; `--json`
//! additionally writes `BENCH_remap.json`.

use hf_core::{Controller, WorkerLayout};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_resilience::{CheckpointStore, FaultInjector, FaultPlan, FaultTrigger};
use hf_rlhf::{
    remap_recoverable, MapperPlanner, Placement, RecoveryConfig, RemapConfig, RemapDriver,
    RemapReport, RlhfConfig,
};
use hf_simcluster::{ClusterSpec, CommCostModel, DeviceId, ResourcePool};
use hf_telemetry::Telemetry;

const ITERATIONS: usize = 4;

fn fresh_store(tag: &str) -> CheckpointStore {
    let dir = std::env::temp_dir().join(format!("hf-bench-remap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    CheckpointStore::new(dir).unwrap()
}

fn initial_placement(world: usize) -> Placement {
    let (t, d) = if world.is_multiple_of(2) { (2, world / 2) } else { (1, world) };
    let spec = ParallelSpec::new(1, t, d);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    Placement::colocated(
        ResourcePool::contiguous(0, world),
        WorkerLayout::with_gen(gen),
        true,
        false,
    )
}

fn run_world(world: usize, batch: usize) -> RemapReport {
    let injector = FaultInjector::new(FaultPlan::new().kill_rank(
        "actor",
        1,
        FaultTrigger::OnCall { method: "update_actor".into(), nth: 3 },
    ));
    let ctrl = Controller::with_faults(
        ClusterSpec::a100_with_gpus(world),
        CommCostModel::default(),
        Telemetry::enabled(),
        injector.clone(),
    );
    let cfg = RemapConfig {
        recovery: RecoveryConfig {
            iterations: ITERATIONS,
            checkpoint_every: 1,
            batch,
            ..Default::default()
        },
        driver: RemapDriver::Barrier,
        allowed: Some((0..world).map(DeviceId).collect()),
        ..Default::default()
    };
    let store = fresh_store(&format!("w{world}"));
    let mut planner = MapperPlanner::toy(world);
    let report = remap_recoverable(
        &ctrl,
        &store,
        &cfg,
        &initial_placement(world),
        RlhfConfig::tiny(),
        &mut planner,
    )
    .expect("elastic run must complete");
    assert_eq!(injector.fired_count(), 1, "the planned kill must fire: {:?}", injector.log());
    assert_eq!(report.run.history.len(), ITERATIONS, "every iteration must complete");
    let _ = ctrl.shutdown();
    report
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let batch = if fast { 4 } else { 8 };
    let worlds: &[usize] = if fast { &[4, 6] } else { &[4, 6, 8, 12] };

    println!("== elastic re-mapping: MTTR vs world size ==");
    println!(
        "{ITERATIONS}-iteration PPO, batch {batch}; kill: actor rank 1 on `update_actor` call 3; \
         the run re-maps onto the survivors and continues live (no restart, no full replay)"
    );

    let headers = [
        "world",
        "after",
        "layout",
        "blackout ms",
        "reshard ms",
        "reshard KiB",
        "mttr ms",
        "lost ms",
        "remaps",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &world in worlds {
        let report = run_world(world, batch);
        let ev = report.remaps.first().expect("the kill must trigger a re-map");
        rows.push(vec![
            format!("{}", ev.world_before),
            format!("{}", ev.world_after),
            format!("p{}t{}d{}", ev.spec.p, ev.spec.t, ev.spec.d),
            format!("{:.3}", ev.blackout_s * 1e3),
            format!("{:.3}", ev.reshard_s * 1e3),
            format!("{:.1}", ev.reshard_bytes as f64 / 1024.0),
            format!("{:.3}", report.run.stats.mean_mttr_s() * 1e3),
            format!("{:.3}", report.run.stats.virtual_time_lost * 1e3),
            format!("{}", report.remaps.len()),
        ]);
    }

    print!("{}", hf_bench::fmt::table(&headers, &rows));
    println!("blackout = detection to training resumed; every figure is virtual-time (bit-stable)");
    hf_bench::report::maybe_write_json("remap", &headers, &rows);
}
