//! The `serve_slo` bench: multi-tenant serving latency vs load across
//! the three standard tenant mixes, plus the headline co-located
//! serve+train scenario.
//!
//! For each mix the front-end replays a seeded arrival schedule at a
//! ladder of load multipliers against a serve-only engine and records
//! per-tenant p50/p99 TTFT, SLO attainment, shed counts, throughput,
//! and cross-tenant cache attribution. The co-located block then runs
//! the same tiered mix under a capacity profile derived from a real
//! pipelined-PPO timeline and pins the top-tier p99 degradation
//! against the serve-only baseline. Everything runs in virtual time;
//! the JSON is byte-identical across runs.

use hf_insight::Json;
use hf_serve::{
    build_arrivals, frontend, mixes, run_colocated, standard_server, CapacityProfile,
    ColocateConfig, ServeConfig, ServeReport, TenantSpec,
};

/// Scenario seed shared by every mix (arrival sample paths fold in
/// per-tenant seeds on top).
pub const SEED: u64 = 42;
/// Serving horizon (virtual seconds) for the load curves.
pub const HORIZON_S: f64 = 8.0;
/// Load multiplier the co-located scenario runs at.
pub const COLOCATED_LOAD: f64 = 2.0;
/// The pinned acceptance factor: co-located top-tier p99 TTFT must stay
/// within this multiple of the serve-only baseline.
pub const TOP_P99_FACTOR: f64 = 1.25;

/// One benched tenant mix: the tenants plus the engine shape they run
/// against (the bursty mix gets a small cache so its storms actually
/// churn).
pub struct MixSpec {
    /// Mix name (JSON key).
    pub name: &'static str,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
    /// Engine cache blocks.
    pub cache_blocks: usize,
    /// Engine max batch.
    pub max_batch: usize,
}

/// The three standard mixes.
pub fn mix_specs() -> Vec<MixSpec> {
    vec![
        MixSpec { name: "uniform3", tenants: mixes::uniform3(), cache_blocks: 64, max_batch: 8 },
        MixSpec { name: "tiered", tenants: mixes::tiered(), cache_blocks: 64, max_batch: 8 },
        MixSpec { name: "bursty", tenants: mixes::bursty(), cache_blocks: 16, max_batch: 4 },
    ]
}

/// The load-multiplier ladder. `fast` is the CI smoke shape; full adds
/// a deep-saturation point.
pub fn load_points(fast: bool) -> Vec<f64> {
    let mut loads = vec![0.5, 1.0, 2.0, 4.0];
    if !fast {
        loads.push(8.0);
    }
    loads
}

fn tenant_json(r: &hf_serve::TenantReport) -> Json {
    Json::obj(vec![
        ("name", Json::Str(r.name.clone())),
        ("priority", Json::Int(r.priority as i64)),
        ("arrivals", Json::Int(r.arrivals as i64)),
        ("completed", Json::Int(r.completed as i64)),
        ("shed_pressure", Json::Int(r.shed_pressure as i64)),
        ("shed_budget", Json::Int(r.shed_budget as i64)),
        ("p50_ttft_s", Json::Num(r.p50_ttft_s)),
        ("p99_ttft_s", Json::Num(r.p99_ttft_s)),
        ("slo_ttft_s", Json::Num(r.slo_ttft_s)),
        ("slo_attainment", Json::Num(r.slo_attainment)),
        ("tokens_per_s", Json::Num(r.tokens_per_s)),
        ("cross_hit_blocks", Json::Int(r.cross_hit_blocks as i64)),
        ("evictions_caused", Json::Int(r.evictions_caused as i64)),
        ("evictions_suffered", Json::Int(r.evictions_suffered as i64)),
        ("peak_charged_bytes", Json::Int(r.peak_charged_bytes as i64)),
    ])
}

fn serve_json(r: &ServeReport) -> Json {
    Json::obj(vec![
        ("duration_s", Json::Num(r.duration_s)),
        ("engine_steps", Json::Int(r.engine_steps as i64)),
        ("preemptions", Json::Int(r.preemptions as i64)),
        ("prefix_hit_tokens", Json::Int(r.prefix_hit_tokens as i64)),
        ("tenants", Json::Arr(r.tenants.iter().map(tenant_json).collect())),
    ])
}

/// Runs one mix across the load ladder (serve-only, full capacity).
pub fn run_mix(mix: &MixSpec, fast: bool) -> Json {
    let (server, vocab) = standard_server(mix.cache_blocks, mix.max_batch);
    let cfg = ServeConfig::default();
    let full = CapacityProfile::constant(1.0);
    let mut curve = Vec::new();
    for load in load_points(fast) {
        let arrivals = build_arrivals(&mix.tenants, HORIZON_S, load, vocab, SEED);
        let rep =
            frontend::run(&server, &mix.tenants, &arrivals, &cfg, &full, None).expect("serve run");
        curve.push(Json::obj(vec![
            ("load", Json::Num(load)),
            ("arrivals", Json::Int(arrivals.len() as i64)),
            ("report", serve_json(&rep)),
        ]));
    }
    Json::obj(vec![
        ("name", Json::Str(mix.name.into())),
        ("cache_blocks", Json::Int(mix.cache_blocks as i64)),
        ("max_batch", Json::Int(mix.max_batch as i64)),
        ("curve", Json::Arr(curve)),
    ])
}

/// Runs the co-located serve+train scenario on the tiered mix.
pub fn run_colocated_block() -> Json {
    let cc = ColocateConfig::default();
    let (server, vocab) = standard_server(64, 8);
    let tenants = mixes::tiered();
    let cfg = ServeConfig::default();
    let run = run_colocated(&cc, &server, vocab, &tenants, 0.0, COLOCATED_LOAD, SEED, &cfg, None)
        .expect("colocated run");
    Json::obj(vec![
        ("load", Json::Num(COLOCATED_LOAD)),
        ("train_window_s", Json::Num(cc.train_window_s)),
        (
            "train",
            Json::obj(vec![
                ("iterations", Json::Int(run.train.iterations as i64)),
                ("virtual_seconds", Json::Num(run.train.virtual_seconds)),
                ("mean_score", Json::Num(run.train.mean_score)),
                ("mean_actor_loss", Json::Num(run.train.mean_actor_loss)),
            ]),
        ),
        ("profile_segments", Json::Int(run.profile_segments.len() as i64)),
        ("top_p99_ratio", Json::Num(run.top_p99_ratio)),
        ("top_p99_factor_limit", Json::Num(TOP_P99_FACTOR)),
        ("colocated", serve_json(&run.colocated)),
        ("serve_only", serve_json(&run.serve_only)),
    ])
}

/// Builds the full `BENCH_serve_slo.json` document.
pub fn build_report(fast: bool) -> Json {
    let mixes: Vec<Json> = mix_specs().iter().map(|m| run_mix(m, fast)).collect();
    Json::obj(vec![
        ("schema", Json::Str("hf-bench.serve_slo/v1".into())),
        ("mode", Json::Str(if fast { "fast" } else { "full" }.into())),
        ("seed", Json::Int(SEED as i64)),
        ("horizon_s", Json::Num(HORIZON_S)),
        ("mixes", Json::Arr(mixes)),
        ("colocated", run_colocated_block()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_insight::{flatten_json, Leaf};
    use std::collections::BTreeMap;

    fn leaf_num(flat: &BTreeMap<String, Leaf>, key: &str) -> f64 {
        match flat.get(key) {
            Some(Leaf::Num(v)) => *v,
            other => panic!("missing numeric leaf {key}: {other:?}"),
        }
    }

    /// The PR's acceptance bar: co-locating training next to the
    /// front-end degrades the top-priority tenant's p99 TTFT by at
    /// most the pinned factor, while the training job completes every
    /// iteration.
    #[test]
    fn colocated_top_tier_p99_stays_within_pinned_factor() {
        let flat = flatten_json(&build_report(true).render()).expect("report parses");
        let ratio = leaf_num(&flat, "colocated.top_p99_ratio");
        assert!(
            ratio <= TOP_P99_FACTOR,
            "co-located top-tier p99 TTFT ratio {ratio} exceeds the pinned {TOP_P99_FACTOR}"
        );
        assert!(ratio >= 1.0 - 1e-9, "ratio is colocated/baseline, must be >= 1");
        let iters = leaf_num(&flat, "colocated.train.iterations");
        assert_eq!(iters as u64, 4, "training must make full progress while serving");
        // Top-tier SLO attainment holds under co-location.
        let att = leaf_num(&flat, "colocated.colocated.tenants[0].slo_attainment");
        assert!((att - 1.0).abs() < 1e-9, "gold SLO attainment {att} under co-location");
    }

    /// Latency-vs-load curves exist for all three mixes and load does
    /// push tail latency up somewhere in each mix.
    #[test]
    fn curves_cover_three_mixes_and_load_moves_the_tail() {
        let flat = flatten_json(&build_report(true).render()).expect("report parses");
        let n_loads = load_points(true).len();
        for (m, spec) in mix_specs().iter().enumerate() {
            let light = leaf_num(&flat, &format!("mixes[{m}].curve[0].arrivals"));
            let heavy = leaf_num(&flat, &format!("mixes[{m}].curve[{}].arrivals", n_loads - 1));
            assert!(heavy > 2.0 * light, "mix {} heaviest load must multiply traffic", spec.name);
            let bumped = (0..spec.tenants.len()).any(|t| {
                let p99 = |c: usize| {
                    leaf_num(
                        &flat,
                        &format!("mixes[{m}].curve[{c}].report.tenants[{t}].p99_ttft_s"),
                    )
                };
                p99(n_loads - 1) > p99(0)
            });
            assert!(bumped, "mix {}: some tenant's p99 must rise with load", spec.name);
        }
    }

    /// Virtual-clock exactness end to end: two full fast sweeps render
    /// byte-identical JSON.
    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = build_report(true).render();
        let b = build_report(true).render();
        assert_eq!(a, b, "serve_slo report must be byte-stable across runs");
    }
}
