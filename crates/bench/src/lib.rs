//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§8). Each experiment is a library function returning
//! structured rows; the `bin/` targets print them as the paper's tables
//! and the Criterion benches measure the algorithmic costs (e.g. the
//! Figure 16 mapping-algorithm runtime).
//!
//! Absolute numbers come from the analytic substrate, not the authors'
//! 128×A100 testbed; what must (and does) match the paper is the
//! *shape*: who wins, by roughly what factor, and where crossovers fall.
//! `EXPERIMENTS.md` records paper-vs-measured for every row.

#![warn(missing_docs)]

pub mod experiments;
pub mod fmt;
pub mod perf;
pub mod pipeline;
pub mod report;
pub mod reward_eval;
pub mod serve_slo;
