//! Shared printing routines for the figure/table binaries.
//!
//! Every binary prints human-readable tables; passing `--json` on the
//! command line additionally writes each table as `BENCH_<name>.json`
//! (an array of objects keyed by column header) for machine
//! consumption. JSON is hand-rolled — the offline build has no
//! serializer crate.

use hf_baselines::System;
use hf_mapping::AlgoKind;
use hf_modelspec::ModelConfig;

use crate::experiments::{self, ThroughputRow};
use crate::fmt;

/// Whether `--json` was passed to the current binary.
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `rows` keyed by `headers` as a JSON array of objects.
pub fn rows_to_json(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  {");
        for (j, (h, v)) in headers.iter().zip(row.iter()).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json_escape(h), json_escape(v)));
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// When `--json` was passed, writes the table to `BENCH_<name>.json` in
/// the current directory and prints the path. Call after printing the
/// human-readable table; a no-op otherwise.
pub fn maybe_write_json(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    if !json_requested() {
        return;
    }
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");
    let path = format!("BENCH_{slug}.json");
    match std::fs::write(&path, rows_to_json(headers, rows)) {
        Ok(()) => println!("[json] wrote {path}"),
        Err(e) => eprintln!("[json] failed to write {path}: {e}"),
    }
}

/// Prints one end-to-end throughput figure (Figures 9/10/11).
pub fn throughput_figure(algo: AlgoKind, title: &str) {
    println!("== {title} ==");
    println!("(tokens/s; OOM = configuration does not fit; paper §8.2 workload)");
    let models = ModelConfig::paper_sizes();
    let rows = experiments::e2e_throughput(algo, &models, 128);
    print_throughput_rows_named(&rows, Some(title));
    println!();
    println!("HybridFlow speedups:");
    for (base, avg, max) in experiments::speedups(&rows) {
        println!("  vs {:<15} avg {avg:.2}x  max {max:.2}x", base.label());
    }
    if let Some(eff) = experiments::scaling_efficiency(&rows) {
        println!("  strong-scaling efficiency: {:.1}%", eff * 100.0);
    }
}

/// Prints throughput rows grouped by model and cluster size.
pub fn print_throughput_rows(rows: &[ThroughputRow]) {
    print_throughput_rows_named(rows, None);
}

/// [`print_throughput_rows`] that also honours `--json` when given a
/// table name.
fn print_throughput_rows_named(rows: &[ThroughputRow], json_name: Option<&str>) {
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.sort();
    keys.dedup();
    let headers = ["model", "gpus", "DS-Chat", "OpenRLHF", "NeMo", "HybridFlow", "speedup"];
    let mut table_rows = Vec::new();
    for (model, gpus) in keys {
        let get = |s: System| {
            rows.iter()
                .find(|r| r.model == model && r.gpus == gpus && r.system == s)
                .and_then(|r| r.throughput)
        };
        let hf = get(System::HybridFlow);
        let best_base = [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner]
            .into_iter()
            .filter_map(get)
            .fold(f64::NAN, f64::max);
        let speedup = match (hf, best_base.is_nan()) {
            (Some(h), false) => format!("{:.2}x", h / best_base),
            _ => "-".into(),
        };
        table_rows.push(vec![
            model.clone(),
            gpus.to_string(),
            fmt::tp(get(System::DeepSpeedChat)),
            fmt::tp(get(System::OpenRlhf)),
            fmt::tp(get(System::NemoAligner)),
            fmt::tp(hf),
            speedup,
        ]);
    }
    print!("{}", fmt::table(&headers, &table_rows));
    if let Some(name) = json_name {
        maybe_write_json(name, &headers, &table_rows);
    }
}

/// Prints a placement-comparison figure (Figures 12/13).
pub fn placement_figure(rows: &[crate::experiments::PlacementRow], title: &str) {
    println!("== {title} ==");
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.sort();
    keys.dedup();
    let headers = ["model", "gpus", "colocate", "standalone", "split", "hybridflow", "best"];
    let mut out = Vec::new();
    for (model, gpus) in keys {
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.model == model && r.gpus == gpus && r.placement == p)
                .and_then(|r| r.throughput)
        };
        let named = [
            ("colocate", get("colocate")),
            ("standalone", get("standalone")),
            ("split", get("split")),
        ];
        let best = named
            .iter()
            .filter_map(|(l, v)| v.map(|x| (*l, x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l.to_string())
            .unwrap_or_else(|| "-".into());
        out.push(vec![
            model.clone(),
            gpus.to_string(),
            fmt::tp(get("colocate")),
            fmt::tp(get("standalone")),
            fmt::tp(get("split")),
            fmt::tp(get("hybridflow")),
            best,
        ]);
    }
    print!("{}", fmt::table(&headers, &out));
    maybe_write_json(title, &headers, &out);
}
