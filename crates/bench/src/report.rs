//! Shared printing routines for the figure/table binaries.

use hf_baselines::System;
use hf_mapping::AlgoKind;
use hf_modelspec::ModelConfig;

use crate::experiments::{self, ThroughputRow};
use crate::fmt;

/// Prints one end-to-end throughput figure (Figures 9/10/11).
pub fn throughput_figure(algo: AlgoKind, title: &str) {
    println!("== {title} ==");
    println!("(tokens/s; OOM = configuration does not fit; paper §8.2 workload)");
    let models = ModelConfig::paper_sizes();
    let rows = experiments::e2e_throughput(algo, &models, 128);
    print_throughput_rows(&rows);
    println!();
    println!("HybridFlow speedups:");
    for (base, avg, max) in experiments::speedups(&rows) {
        println!("  vs {:<15} avg {avg:.2}x  max {max:.2}x", base.label());
    }
    if let Some(eff) = experiments::scaling_efficiency(&rows) {
        println!("  strong-scaling efficiency: {:.1}%", eff * 100.0);
    }
}

/// Prints throughput rows grouped by model and cluster size.
pub fn print_throughput_rows(rows: &[ThroughputRow]) {
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.sort();
    keys.dedup();
    let headers = ["model", "gpus", "DS-Chat", "OpenRLHF", "NeMo", "HybridFlow", "speedup"];
    let mut table_rows = Vec::new();
    for (model, gpus) in keys {
        let get = |s: System| {
            rows.iter()
                .find(|r| r.model == model && r.gpus == gpus && r.system == s)
                .and_then(|r| r.throughput)
        };
        let hf = get(System::HybridFlow);
        let best_base = [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner]
            .into_iter()
            .filter_map(get)
            .fold(f64::NAN, f64::max);
        let speedup = match (hf, best_base.is_nan()) {
            (Some(h), false) => format!("{:.2}x", h / best_base),
            _ => "-".into(),
        };
        table_rows.push(vec![
            model.clone(),
            gpus.to_string(),
            fmt::tp(get(System::DeepSpeedChat)),
            fmt::tp(get(System::OpenRlhf)),
            fmt::tp(get(System::NemoAligner)),
            fmt::tp(hf),
            speedup,
        ]);
    }
    print!("{}", fmt::table(&headers, &table_rows));
}

/// Prints a placement-comparison figure (Figures 12/13).
pub fn placement_figure(rows: &[crate::experiments::PlacementRow], title: &str) {
    println!("== {title} ==");
    let mut keys: Vec<(String, usize)> = rows.iter().map(|r| (r.model.clone(), r.gpus)).collect();
    keys.sort();
    keys.dedup();
    let headers = ["model", "gpus", "colocate", "standalone", "split", "hybridflow", "best"];
    let mut out = Vec::new();
    for (model, gpus) in keys {
        let get = |p: &str| {
            rows.iter()
                .find(|r| r.model == model && r.gpus == gpus && r.placement == p)
                .and_then(|r| r.throughput)
        };
        let named = [("colocate", get("colocate")), ("standalone", get("standalone")), ("split", get("split"))];
        let best = named
            .iter()
            .filter_map(|(l, v)| v.map(|x| (*l, x)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l.to_string())
            .unwrap_or_else(|| "-".into());
        out.push(vec![
            model.clone(),
            gpus.to_string(),
            fmt::tp(get("colocate")),
            fmt::tp(get("standalone")),
            fmt::tp(get("split")),
            fmt::tp(get("hybridflow")),
            best,
        ]);
    }
    print!("{}", fmt::table(&headers, &out));
}
