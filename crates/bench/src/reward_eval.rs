//! The `reward_eval` bench: verifier-pool reward serving under the
//! virtual-time sandbox — pool-size scaling and the effect of straggler
//! cancellation on tail latency.
//!
//! Each configuration evaluates one batch of synthetic verifier tasks
//! through [`hf_rewards::SandboxPool`], sweeping worker count × task-cost
//! distribution. For the heavy-tailed distribution every pool size runs
//! twice — cancellation on and off — and the report records the p99
//! task-latency reduction the cancellation policy buys. Everything is
//! seeded virtual time, so the JSON is byte-stable across runs.

use hf_insight::Json;
use hf_rewards::{
    make_verifier_prompts, CostProfile, EvalItem, EvalReport, PoolConfig, SandboxPool,
    VerifierKind, VerifierSpec,
};

/// One swept configuration.
#[derive(Debug, Clone)]
pub struct RewardEvalConfig {
    /// Stable name, used as the JSON key and table row label.
    pub name: String,
    /// Sandbox worker slots in the pool.
    pub workers: usize,
    /// Verifier tasks in the batch.
    pub tasks: usize,
    /// `"light"` or `"heavy_tail"` cost distribution.
    pub profile: &'static str,
}

/// The sweep. `fast` is the CI smoke shape (two pool sizes per
/// profile); full sweeps 2–16 workers.
pub fn sweep(fast: bool) -> Vec<RewardEvalConfig> {
    let sizes: &[usize] = if fast { &[2, 8] } else { &[2, 4, 8, 16] };
    let mut out = Vec::new();
    for &profile in &["light", "heavy_tail"] {
        for &workers in sizes {
            out.push(RewardEvalConfig {
                name: format!("{profile}_w{workers}"),
                workers,
                tasks: if fast { 128 } else { 256 },
                profile,
            });
        }
    }
    out
}

const SEED: u64 = 0xbe9c;
const PROMPT_LEN: usize = 6;
const RESP_LEN: usize = 6;
const VOCAB: u32 = 16;

fn profile(name: &str) -> CostProfile {
    match name {
        "light" => CostProfile::light(),
        "heavy_tail" => CostProfile::heavy_tail(),
        other => panic!("unknown cost profile {other}"),
    }
}

/// The synthetic task batch: seeded prompts plus responses drawn from
/// the same generator (content only matters for scoring determinism,
/// not for the timing being measured).
fn items(tasks: usize) -> Vec<EvalItem> {
    let prompts = make_verifier_prompts(tasks, PROMPT_LEN, VOCAB, SEED);
    let resps = make_verifier_prompts(tasks, RESP_LEN, VOCAB, SEED ^ 0xa5a5);
    (0..tasks)
        .map(|r| EvalItem {
            task_seed: SEED.wrapping_mul(0x9e37).wrapping_add(r as u64),
            prompt: prompts[r * PROMPT_LEN..(r + 1) * PROMPT_LEN].to_vec(),
            response: resps[r * RESP_LEN..(r + 1) * RESP_LEN].to_vec(),
        })
        .collect()
}

fn evaluate(cfg: &RewardEvalConfig, cancel: bool) -> EvalReport {
    let mut pc = PoolConfig::new(cfg.workers, SEED);
    pc.cost = profile(cfg.profile);
    pc.cancel_stragglers = cancel;
    let spec = VerifierSpec { kind: VerifierKind::AnswerExtraction, vocab: VOCAB };
    SandboxPool::new(pc).evaluate(&spec, &items(cfg.tasks))
}

fn report_json(r: &EvalReport) -> Json {
    Json::obj(vec![
        ("makespan_s", Json::Num(r.makespan_s)),
        ("p50_s", Json::Num(r.latency_percentile(0.50))),
        ("p99_s", Json::Num(r.latency_percentile(0.99))),
        ("mean_occupancy", Json::Num(r.mean_occupancy())),
        ("timeouts", Json::Int(r.timeouts as i64)),
        ("retries", Json::Int(r.retries as i64)),
        ("mem_aborts", Json::Int(r.mem_aborts as i64)),
        ("failed", Json::Int(r.failed as i64)),
    ])
}

/// Runs one configuration (cancellation on, plus the off arm and its
/// p99 comparison for the heavy-tailed profile).
pub fn run_config(cfg: &RewardEvalConfig) -> Json {
    let on = evaluate(cfg, true);
    let mut fields = vec![
        ("name", Json::Str(cfg.name.clone())),
        ("workers", Json::Int(cfg.workers as i64)),
        ("tasks", Json::Int(cfg.tasks as i64)),
        ("profile", Json::Str(cfg.profile.into())),
        ("cancel_on", report_json(&on)),
    ];
    if cfg.profile == "heavy_tail" {
        let off = evaluate(cfg, false);
        let p99_on = on.latency_percentile(0.99);
        let p99_off = off.latency_percentile(0.99);
        fields.push(("cancel_off", report_json(&off)));
        fields.push(("p99_reduction", Json::Num(1.0 - p99_on / p99_off)));
    }
    Json::obj(fields)
}

/// Builds the full `BENCH_reward_eval.json` document.
pub fn build_report(fast: bool) -> Json {
    let configs: Vec<Json> = sweep(fast).iter().map(run_config).collect();
    Json::obj(vec![
        ("schema", Json::Str("hf-bench.reward_eval/v1".into())),
        ("mode", Json::Str(if fast { "fast" } else { "full" }.into())),
        ("configs", Json::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_insight::{flatten_json, Leaf};

    fn leaf_num(flat: &std::collections::BTreeMap<String, Leaf>, key: &str) -> f64 {
        match flat.get(key) {
            Some(Leaf::Num(v)) => *v,
            other => panic!("missing numeric leaf {key}: {other:?}"),
        }
    }

    /// The PR's acceptance bar: straggler cancellation cuts the p99
    /// task latency vs no-cancellation by a measured margin on the
    /// heavy-tailed profile, and pool-size scaling shrinks the
    /// makespan.
    #[test]
    fn cancellation_cuts_p99_and_pools_scale() {
        let flat = flatten_json(&build_report(true).render()).expect("report parses");
        let cfgs = sweep(true);
        let mut best_reduction = 0.0f64;
        let mut makespans: std::collections::BTreeMap<&str, Vec<(usize, f64)>> = Default::default();
        for (i, cfg) in cfgs.iter().enumerate() {
            let makespan = leaf_num(&flat, &format!("configs[{i}].cancel_on.makespan_s"));
            makespans.entry(cfg.profile).or_default().push((cfg.workers, makespan));
            if cfg.profile == "heavy_tail" {
                best_reduction =
                    best_reduction.max(leaf_num(&flat, &format!("configs[{i}].p99_reduction")));
            }
        }
        assert!(
            best_reduction >= 0.25,
            "cancellation must cut heavy-tail p99 by >= 25%, best {best_reduction}"
        );
        for (profile, mut points) in makespans {
            points.sort_by_key(|&(w, _)| w);
            for pair in points.windows(2) {
                assert!(
                    pair[1].1 < pair[0].1,
                    "{profile}: makespan must shrink as workers grow: {points:?}"
                );
            }
        }
    }

    /// Seeded virtual time end to end: two sweeps render byte-identical
    /// JSON.
    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = build_report(true).render();
        let b = build_report(true).render();
        assert_eq!(a, b, "reward_eval report must be byte-stable across runs");
    }
}
