//! Plain-text table formatting for the figure/table binaries.

/// Renders rows as an aligned ASCII table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Formats an optional throughput as `tokens/s` or `OOM`.
pub fn tp(v: Option<f64>) -> String {
    match v {
        Some(t) => format!("{t:.0}"),
        None => "OOM".into(),
    }
}

/// Formats an optional time in seconds.
pub fn secs(v: Option<f64>) -> String {
    match v {
        Some(t) => format!("{t:.2}s"),
        None => "OOM".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t =
            table(&["a", "bbbb"], &[vec!["x".into(), "y".into()], vec!["long".into(), "z".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bbbb"));
        assert!(lines[2].ends_with("y"));
    }

    #[test]
    fn option_formatters() {
        assert_eq!(tp(None), "OOM");
        assert_eq!(tp(Some(1234.6)), "1235");
        assert_eq!(secs(Some(1.234)), "1.23s");
    }
}
