//! The perf regression gate: runs a fig9-style sweep of functional PPO
//! iterations with telemetry on, feeds the traces through hf-insight,
//! and renders a deterministic `BENCH_perf_report.json` — critical-path
//! breakdown, bubble fractions, what-if overlap bounds, and latency
//! digests per configuration.
//!
//! Determinism contract: the simulated cluster is virtual-clock exact,
//! insight orders everything canonically, and the JSON renderer is
//! byte-stable — two runs of the same binary produce byte-identical
//! reports (`report_is_byte_identical_across_runs` enforces this). CI
//! runs `perf_report --fast --check`, which diffs the fresh report
//! against the committed baseline at
//! `crates/bench/baselines/perf_report_fast.json` within a relative
//! tolerance and fails on drift; intentional performance changes are
//! landed by regenerating the baseline (`perf_report --fast` and
//! copying the report over it — see DESIGN.md §13).

use hf_core::{Controller, WorkerLayout};
use hf_insight::{analyze_iterations, num_map, IterationAnalysis, Json, SpanGraph};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_rlhf::env::make_prompts;
use hf_rlhf::{ppo_iteration, PipelineConfig, PipelinedPpo, Placement, RlhfConfig, RlhfSystem};
use hf_simcluster::{ClusterSpec, CommCostModel, ResourcePool};
use hf_telemetry::Telemetry;

/// One swept configuration.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// Stable name, used as the JSON key and table row label.
    pub name: String,
    /// Simulated GPUs.
    pub gpus: usize,
    /// Training layout (dp, tp, pp).
    pub layout: (usize, usize, usize),
    /// Generation TP size.
    pub tg: usize,
    /// Measured iterations after the one warmup iteration.
    pub iterations: usize,
}

/// The sweep. `fast` is the CI shape (8 GPUs, two generation TPs, one
/// measured iteration each — the committed baseline covers exactly
/// this); full sweeps 16 GPUs over the Figure 15 `t_g` axis.
pub fn sweep(fast: bool) -> Vec<PerfConfig> {
    let (gpus, layout, tgs, iterations): (usize, _, &[usize], usize) =
        if fast { (8, (1, 4, 2), &[2, 4], 1) } else { (16, (1, 8, 2), &[1, 2, 4, 8], 2) };
    tgs.iter()
        .map(|&tg| PerfConfig {
            name: format!("ppo_{}gpu_dp{}tp{}pp{}_tg{tg}", gpus, layout.0, layout.1, layout.2),
            gpus,
            layout,
            tg,
            iterations,
        })
        .collect()
}

fn what_if_json(it: &IterationAnalysis) -> Json {
    Json::obj(vec![
        ("zero_cost_transition_s", Json::Num(it.what_if.zero_cost_transition_s)),
        ("full_gen_train_overlap_s", Json::Num(it.what_if.full_gen_train_overlap_s)),
    ])
}

fn iteration_json(it: &IterationAnalysis) -> Json {
    // Durations only — absolute virtual timestamps depend on how much
    // warmup preceded the window and would add noise to `--check`.
    let path = it
        .segments
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("phase", Json::Str(s.phase.clone())),
                ("role", Json::Str(s.role.clone())),
                ("kind", Json::Str(s.kind.clone())),
                ("name", Json::Str(s.name.clone())),
                ("seconds", Json::Num(s.seconds())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("index", Json::Int(it.index as i64)),
        ("duration_s", Json::Num(it.duration())),
        ("phases_s", num_map(&it.phases)),
        ("critical_path_by_role_s", num_map(&it.by_role)),
        ("critical_path_by_kind_s", num_map(&it.by_kind)),
        ("track_bubble_fraction", num_map(&it.track_bubble)),
        ("role_bubble_fraction", num_map(&it.role_bubble)),
        ("what_if", what_if_json(it)),
        ("critical_path", Json::Arr(path)),
    ])
}

/// Runs one configuration and returns its report object.
pub fn run_config(cfg: &PerfConfig) -> Json {
    let telemetry = Telemetry::enabled();
    let ctrl = Controller::with_telemetry(
        ClusterSpec::a100_with_gpus(cfg.gpus),
        CommCostModel::default(),
        telemetry.clone(),
    );
    let rc = RlhfConfig::tiny();
    let (dp, tp, pp) = cfg.layout;
    let spec = ParallelSpec::new(dp, tp, pp);
    let gen = GenGrouping::new(spec, 1, cfg.tg, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, cfg.gpus),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let sys = RlhfSystem::build(&ctrl, &placement, rc.clone()).expect("build system");
    let prompts = make_prompts(8, rc.prompt_len, rc.response_len, rc.lm.vocab as u32, 0);
    ppo_iteration(&sys, &ctrl, &prompts).expect("warmup iteration");
    telemetry.clear();
    for _ in 0..cfg.iterations {
        ppo_iteration(&sys, &ctrl, &prompts).expect("measured iteration");
    }

    let graph = SpanGraph::build(telemetry.spans());
    let iters = analyze_iterations(&graph);
    let digests = telemetry.metrics().digests;
    let digest_json: Vec<(String, Json)> =
        digests.iter().map(|(k, d)| (k.clone(), hf_insight::digest_stats(d))).collect();
    ctrl.shutdown().expect("shutdown");

    Json::obj(vec![
        ("name", Json::Str(cfg.name.clone())),
        ("gpus", Json::Int(cfg.gpus as i64)),
        ("layout", Json::Str(format!("dp{dp}-tp{tp}-pp{pp}"))),
        ("gen_tp", Json::Int(cfg.tg as i64)),
        ("iterations", Json::Arr(iters.iter().map(iteration_json).collect())),
        ("pipeline", run_pipeline_config(cfg, &placement, &rc)),
        ("digests", Json::Obj(digest_json)),
    ])
}

/// The pipelined counterpart of [`run_config`]'s sync pass: the same
/// placement driven by [`PipelinedPpo`] at staleness 1 on a fresh
/// system, reporting *measured* overlap — `perf_report` prints it next
/// to the sync pass's full-overlap what-if bound, so the gate tracks
/// how much of the theoretical headroom the pipeline actually claims.
fn run_pipeline_config(cfg: &PerfConfig, placement: &Placement, rc: &RlhfConfig) -> Json {
    let telemetry = Telemetry::enabled();
    let ctrl = Controller::with_telemetry(
        ClusterSpec::a100_with_gpus(cfg.gpus),
        CommCostModel::default(),
        telemetry.clone(),
    );
    let sys = RlhfSystem::build(&ctrl, placement, rc.clone()).expect("build pipelined system");
    let prompts = make_prompts(8, rc.prompt_len, rc.response_len, rc.lm.vocab as u32, 0);
    let mut driver = PipelinedPpo::new(PipelineConfig { staleness: 1, gen_chunks: 2 });
    let steps = cfg.iterations + 1;
    let t0 = ctrl.clock();
    for _ in 0..steps {
        driver.step(&sys, &ctrl, &prompts).expect("pipelined step");
    }
    driver.flush(&sys, &ctrl).expect("pipeline flush");
    let total = ctrl.clock() - t0;
    let metrics = telemetry.metrics();
    let overlap_s =
        metrics.counters.get("pipeline.overlap_measured_us").copied().unwrap_or(0) as f64 / 1e6;
    let frac = metrics.gauges.get("pipeline.overlap_fraction").copied().unwrap_or(0.0);
    ctrl.shutdown().expect("shutdown");
    Json::obj(vec![
        ("staleness", Json::Int(1)),
        ("iterations", Json::Int(steps as i64)),
        ("iteration_s", Json::Num(total / steps as f64)),
        ("overlap_measured_s", Json::Num(overlap_s)),
        ("overlap_fraction", Json::Num(frac)),
    ])
}

/// Builds the full report for one mode.
pub fn build_report(fast: bool) -> Json {
    let configs: Vec<Json> = sweep(fast).iter().map(run_config).collect();
    Json::obj(vec![
        ("schema", Json::Str("hf-insight.perf_report/v1".into())),
        ("mode", Json::Str(if fast { "fast" } else { "full" }.into())),
        ("configs", Json::Arr(configs)),
    ])
}

/// Path of the committed fast-sweep baseline.
pub fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines/perf_report_fast.json")
}

/// Relative tolerance `--check` allows before failing.
pub const CHECK_REL_TOL: f64 = 0.05;

/// Diffs a rendered report against the baseline text. `Ok` means within
/// tolerance; `Err` carries one line per difference.
pub fn check(current: &str, baseline: &str) -> Result<(), Vec<String>> {
    let b = hf_insight::flatten_json(baseline).map_err(|e| vec![format!("bad baseline: {e}")])?;
    let c = hf_insight::flatten_json(current).map_err(|e| vec![format!("bad report: {e}")])?;
    let diffs = hf_insight::compare_flat(&b, &c, CHECK_REL_TOL);
    if diffs.is_empty() {
        Ok(())
    } else {
        Err(diffs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline determinism guarantee: two full passes over the fast
    /// sweep — fresh clusters, fresh device threads, racy span-id
    /// allocation and all — render byte-identical reports.
    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = build_report(true).render();
        let b = build_report(true).render();
        assert_eq!(a, b, "perf report must be byte-stable across runs");
    }

    #[test]
    fn report_has_the_gated_content() {
        let text = build_report(true).render();
        let flat = hf_insight::flatten_json(&text).expect("report parses");
        assert_eq!(flat["schema"], hf_insight::Leaf::Str("hf-insight.perf_report/v1".into()));
        // Critical-path attribution, bubbles, what-ifs, and digests all
        // present for the first config's first iteration.
        let probe = [
            "configs[0].iterations[0].duration_s",
            "configs[0].iterations[0].critical_path_by_kind_s.exec",
            "configs[0].iterations[0].critical_path_by_kind_s.transition",
            "configs[0].iterations[0].track_bubble_fraction.gpu-0",
            "configs[0].iterations[0].role_bubble_fraction.actor",
            "configs[0].iterations[0].what_if.zero_cost_transition_s",
            "configs[0].pipeline.iteration_s",
            "configs[0].pipeline.overlap_measured_s",
            "configs[0].pipeline.overlap_fraction",
            "configs[0].digests.phase.generation.seconds.p50",
            "configs[0].digests.genserve.rollout.tokens_per_s.count",
        ];
        for key in probe {
            assert!(flat.contains_key(key), "missing {key}");
        }
        // Gap-free tiling survives the real runtime, not just unit
        // fixtures: segments sum to the iteration duration.
        let dur = match flat["configs[0].iterations[0].duration_s"] {
            hf_insight::Leaf::Num(d) => d,
            ref other => panic!("duration leaf {other:?}"),
        };
        let path_total: f64 = flat
            .iter()
            .filter(|(k, _)| {
                k.starts_with("configs[0].iterations[0].critical_path[") && k.ends_with(".seconds")
            })
            .map(|(_, v)| match v {
                hf_insight::Leaf::Num(s) => *s,
                other => panic!("seconds leaf {other:?}"),
            })
            .sum();
        assert!(
            (path_total - dur).abs() < 1e-6 * dur.max(1.0),
            "critical path must tile the iteration: {path_total} vs {dur}"
        );
    }

    #[test]
    fn check_matches_committed_baseline() {
        let baseline = std::fs::read_to_string(baseline_path())
            .expect("committed baseline exists; regenerate with `perf_report --fast`");
        let current = build_report(true).render();
        if let Err(diffs) = check(&current, &baseline) {
            panic!(
                "fast report drifted from the committed baseline; if intentional, \
                 regenerate it with `perf_report --fast` and copy \
                 BENCH_perf_report.json over crates/bench/baselines/perf_report_fast.json:\n{}",
                diffs.join("\n")
            );
        }
    }
}
