//! The `pipeline_overlap` bench: end-to-end iteration latency of the
//! one-step-off-policy pipelined PPO driver against the synchronous
//! barrier driver, on split placements (each model on its own device
//! pool) across a fig9-style scale sweep.
//!
//! Split placements are where pipelining pays: with disjoint pools, the
//! critic/reference/reward forwards of a freshly landed generation chunk
//! and the update micro-batches of the previous iteration genuinely run
//! concurrently with the actor's generation, instead of queueing behind
//! it on shared devices. The report records, per configuration, the
//! barrier per-iteration latency, the pipelined latency at staleness 0
//! and 1, the speedups, and the measured overlap fraction — everything
//! is virtual-clock exact, so the JSON is byte-stable across runs.

use hf_core::{Controller, WorkerLayout};
use hf_insight::Json;
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_rlhf::env::make_prompts;
use hf_rlhf::{
    ppo_iteration, ModelPlacement, PipelineConfig, PipelinedPpo, Placement, RlhfConfig, RlhfSystem,
};
use hf_simcluster::{ClusterSpec, ResourcePool};

/// One swept configuration: four equal pools (actor, critic, reference,
/// reward), each running `spec` with generation TP `tg` on the actor.
#[derive(Debug, Clone)]
pub struct OverlapConfig {
    /// Stable name, used as the JSON key and table row label.
    pub name: String,
    /// Devices per model pool (total GPUs = 4x this).
    pub per_model: usize,
    /// Per-model layout, in `ParallelSpec::new` argument order
    /// (pipeline, tensor, data).
    pub spec: (usize, usize, usize),
    /// Generation TP size on the actor.
    pub tg: usize,
    /// Prompt rows per iteration.
    pub rows: usize,
    /// Generation chunks per iteration in the pipelined modes.
    pub gen_chunks: usize,
    /// Iterations per mode (every mode trains exactly this many batches).
    pub iterations: usize,
}

/// The sweep. `fast` is the CI smoke shape (8 GPUs, 2 per model);
/// full adds the 16-GPU row and a second generation-TP point.
pub fn sweep(fast: bool) -> Vec<OverlapConfig> {
    let mut configs = vec![OverlapConfig {
        name: "split_8gpu_p1t1d2_tg1".into(),
        per_model: 2,
        spec: (1, 1, 2),
        tg: 1,
        rows: 8,
        gen_chunks: 2,
        iterations: 4,
    }];
    if !fast {
        configs.push(OverlapConfig {
            name: "split_8gpu_p1t2d1_tg2".into(),
            per_model: 2,
            spec: (1, 2, 1),
            tg: 2,
            rows: 8,
            gen_chunks: 2,
            iterations: 4,
        });
        configs.push(OverlapConfig {
            name: "split_16gpu_p1t2d2_tg2".into(),
            per_model: 4,
            spec: (1, 2, 2),
            tg: 2,
            rows: 16,
            gen_chunks: 4,
            iterations: 4,
        });
    }
    configs
}

fn build(cfg: &OverlapConfig) -> (Controller, RlhfSystem, RlhfConfig) {
    let rc = RlhfConfig::tiny();
    let n = cfg.per_model;
    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(4 * n));
    let (p, t, d) = cfg.spec;
    let spec = ParallelSpec::new(p, t, d);
    let gen = GenGrouping::new(spec, 1, cfg.tg, GroupingMethod::Strided);
    let train = WorkerLayout::train_only(spec);
    let placement = Placement {
        actor: ModelPlacement {
            pool: ResourcePool::contiguous(0, n),
            layout: WorkerLayout::with_gen(gen),
        },
        critic: Some(ModelPlacement { pool: ResourcePool::contiguous(n, n), layout: train }),
        reference: ModelPlacement { pool: ResourcePool::contiguous(2 * n, n), layout: train },
        reward: ModelPlacement { pool: ResourcePool::contiguous(3 * n, n), layout: train },
        cost: None,
    };
    let sys = RlhfSystem::build(&ctrl, &placement, rc.clone()).expect("build split system");
    (ctrl, sys, rc)
}

/// Barrier baseline: the synchronous driver, per-iteration latency.
fn run_barrier(cfg: &OverlapConfig) -> f64 {
    let (ctrl, sys, rc) = build(cfg);
    let t0 = ctrl.clock();
    for iter in 0..cfg.iterations as u64 {
        let prompts =
            make_prompts(cfg.rows, rc.prompt_len, rc.response_len, rc.lm.vocab as u32, iter);
        ppo_iteration(&sys, &ctrl, &prompts).expect("barrier iteration");
    }
    let total = ctrl.clock() - t0;
    ctrl.shutdown().expect("shutdown");
    total / cfg.iterations as f64
}

/// Pipelined run at the given staleness; trains exactly
/// `cfg.iterations` batches (flush drains the in-flight tail) and
/// returns `(per-iteration latency, final cumulative overlap fraction)`.
fn run_pipelined(cfg: &OverlapConfig, staleness: u32) -> (f64, f64) {
    let (ctrl, sys, rc) = build(cfg);
    let mut driver = PipelinedPpo::new(PipelineConfig { staleness, gen_chunks: cfg.gen_chunks });
    let t0 = ctrl.clock();
    let mut last_frac = 0.0;
    for iter in 0..cfg.iterations as u64 {
        let prompts =
            make_prompts(cfg.rows, rc.prompt_len, rc.response_len, rc.lm.vocab as u32, iter);
        if let Some(stats) = driver.step(&sys, &ctrl, &prompts).expect("pipelined step") {
            last_frac = stats.overlap_fraction;
        }
    }
    for stats in driver.flush(&sys, &ctrl).expect("pipeline flush") {
        last_frac = stats.overlap_fraction;
    }
    let total = ctrl.clock() - t0;
    ctrl.shutdown().expect("shutdown");
    (total / cfg.iterations as f64, last_frac)
}

/// Runs one configuration across all three modes.
pub fn run_config(cfg: &OverlapConfig) -> Json {
    let barrier_s = run_barrier(cfg);
    let (s0_s, s0_frac) = run_pipelined(cfg, 0);
    let (s1_s, s1_frac) = run_pipelined(cfg, 1);
    let (p, t, d) = cfg.spec;
    Json::obj(vec![
        ("name", Json::Str(cfg.name.clone())),
        ("gpus", Json::Int(4 * cfg.per_model as i64)),
        ("layout", Json::Str(format!("p{p}-t{t}-d{d}"))),
        ("gen_tp", Json::Int(cfg.tg as i64)),
        ("rows", Json::Int(cfg.rows as i64)),
        ("gen_chunks", Json::Int(cfg.gen_chunks as i64)),
        ("iterations", Json::Int(cfg.iterations as i64)),
        ("barrier_iteration_s", Json::Num(barrier_s)),
        (
            "staleness0",
            Json::obj(vec![
                ("iteration_s", Json::Num(s0_s)),
                ("speedup", Json::Num(barrier_s / s0_s)),
                ("overlap_fraction", Json::Num(s0_frac)),
            ]),
        ),
        (
            "staleness1",
            Json::obj(vec![
                ("iteration_s", Json::Num(s1_s)),
                ("speedup", Json::Num(barrier_s / s1_s)),
                ("overlap_fraction", Json::Num(s1_frac)),
            ]),
        ),
    ])
}

/// Builds the full `BENCH_pipeline_overlap.json` document.
pub fn build_report(fast: bool) -> Json {
    let configs: Vec<Json> = sweep(fast).iter().map(run_config).collect();
    Json::obj(vec![
        ("schema", Json::Str("hf-bench.pipeline_overlap/v1".into())),
        ("mode", Json::Str(if fast { "fast" } else { "full" }.into())),
        ("configs", Json::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hf_insight::{flatten_json, Leaf};

    fn leaf_num(flat: &std::collections::BTreeMap<String, Leaf>, key: &str) -> f64 {
        match flat.get(key) {
            Some(Leaf::Num(v)) => *v,
            other => panic!("missing numeric leaf {key}: {other:?}"),
        }
    }

    /// The PR's acceptance bar: on at least one fig9-style split
    /// configuration, one-step-off-policy pipelining beats the barrier
    /// driver by >= 1.2x end-to-end, and staleness 0 never loses to the
    /// barrier (same schedule bits, strictly more overlap).
    #[test]
    fn staleness1_beats_barrier_by_at_least_1_2x_somewhere() {
        let flat = flatten_json(&build_report(true).render()).expect("report parses");
        let n = sweep(true).len();
        let mut best = 0.0f64;
        for i in 0..n {
            let s1 = leaf_num(&flat, &format!("configs[{i}].staleness1.speedup"));
            let s0 = leaf_num(&flat, &format!("configs[{i}].staleness0.speedup"));
            assert!(
                s0 >= 0.999,
                "staleness 0 must not regress the barrier driver (config {i}: {s0})"
            );
            best = best.max(s1);
        }
        assert!(best >= 1.2, "expected >= 1.2x pipelined speedup on some config, best {best}");
    }

    /// Virtual-clock exactness end to end: two full fast sweeps render
    /// byte-identical JSON.
    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = build_report(true).render();
        let b = build_report(true).render();
        assert_eq!(a, b, "pipeline overlap report must be byte-stable across runs");
    }
}
