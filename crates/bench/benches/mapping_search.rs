//! Criterion bench for Figure 16: runtime of the auto device-mapping
//! search (Algorithm 1) as model size and cluster size scale together.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hf_mapping::{AlgoKind, DataflowSpec, Mapper};
use hf_modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hf_simcluster::ClusterSpec;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_mapping_runtime");
    for (model, gpus) in [
        (ModelConfig::llama_7b(), 16usize),
        (ModelConfig::llama_13b(), 32),
        (ModelConfig::llama_34b(), 64),
        (ModelConfig::llama_70b(), 128),
    ] {
        group.bench_with_input(
            BenchmarkId::new(model.name.clone(), gpus),
            &(model, gpus),
            |b, (model, gpus)| {
                b.iter(|| {
                    let perf = PerfModel::new(ClusterSpec::a100_with_gpus(*gpus));
                    let df =
                        DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
                    let mapper = Mapper::new(perf, df, *gpus);
                    black_box(mapper.search())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
