//! Criterion bench for Table 2 / Figure 14: the functional resharding
//! path of the 3D-HybridEngine — scatter, strided reshard, and the
//! analytic transition-time evaluation — across engine designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hf_hybridengine::{transition_time, ActorShards, EngineMode};
use hf_modelspec::ModelConfig;
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec, ShardLayout};
use hf_simcluster::{ClusterSpec, CommCostModel, DeviceId};
use std::hint::black_box;

fn bench_functional_reshard(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_reshard");
    for (t, tg) in [(4usize, 2usize), (8, 2), (8, 4)] {
        let spec = ParallelSpec::new(1, t, 2);
        let grouping = GenGrouping::new(spec, 1, tg, GroupingMethod::Strided);
        let layout = ShardLayout::uniform(8, 4096 * t);
        let params: Vec<f32> = (0..layout.total_params()).map(|i| i as f32).collect();
        let shards = ActorShards::scatter(&params, layout, grouping);
        group.bench_with_input(
            BenchmarkId::new(format!("t{t}_tg{tg}"), layout_params(&shards)),
            &shards,
            |b, shards| {
                b.iter(|| {
                    for rank in 0..shards.grouping().train.world() {
                        black_box(shards.reshard_to_gen(rank));
                    }
                })
            },
        );
    }
    group.finish();
}

fn layout_params(s: &ActorShards) -> usize {
    s.grouping().train.world()
}

fn bench_transition_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_transition_analytics");
    let model = ModelConfig::llama_13b();
    let spec = ParallelSpec::new(1, 8, 2);
    let gen = GenGrouping::new(spec, 1, 2, GroupingMethod::Strided);
    let cluster = ClusterSpec::a100_with_gpus(16);
    let cost = CommCostModel::default();
    let devices: Vec<DeviceId> = (0..16).map(DeviceId).collect();
    for (label, mode) in [
        ("ds_chat", EngineMode::DsChat),
        ("hybridflow_v", EngineMode::HybridFlowV),
        ("hybridflow", EngineMode::HybridFlow),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(transition_time(mode, &model, &spec, &gen, &devices, &cluster, &cost))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_functional_reshard, bench_transition_analytics);
criterion_main!(benches);
