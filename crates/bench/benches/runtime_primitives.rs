//! Criterion benches for the substrate primitives: virtual-NCCL
//! collectives across real threads, `DataProto` protocol dispatch, and
//! the tiny-LM autograd step — the pieces every functional RLHF
//! iteration is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hf_core::{DataProto, Protocol, WorkerLayout};
use hf_nn::{LmConfig, TinyLm};
use hf_parallel::ParallelSpec;
use hf_simcluster::{ClusterSpec, CommCostModel, CommGroup, Communicator, DeviceId, VirtualClock};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

fn bench_collectives(c: &mut Criterion) {
    let mut group = c.benchmark_group("virtual_nccl_all_reduce");
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &n| {
            b.iter(|| {
                let grp = CommGroup::new((0..n).map(DeviceId).collect());
                let cluster = Arc::new(ClusterSpec::a100_with_gpus(n));
                let handles: Vec<_> = (0..n)
                    .map(|r| {
                        let comm = Communicator::new(
                            grp.clone(),
                            r,
                            cluster.clone(),
                            CommCostModel::default(),
                        );
                        thread::spawn(move || {
                            let mut clock = VirtualClock::new();
                            let data = vec![r as f32; 4096];
                            for _ in 0..8 {
                                black_box(comm.all_reduce_sum(&mut clock, &data));
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
    }
    group.finish();
}

fn bench_protocol_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_dispatch");
    let layout = WorkerLayout::train_only(ParallelSpec::new(2, 4, 4));
    let mut data = DataProto::with_rows(1024);
    data.insert_f32("logp", vec![0.5; 1024 * 64], 64);
    data.insert_tokens("prompts", vec![1; 1024 * 64], 64);
    for proto in [Protocol::ThreeD, Protocol::OneToAll, Protocol::Dp] {
        if proto == Protocol::Dp {
            continue; // needs a pure-DP layout, covered below
        }
        group.bench_function(format!("{proto:?}"), |b| {
            b.iter(|| {
                let ins = proto.distribute(&layout, &data).unwrap();
                black_box(proto.collect(&layout, ins).unwrap())
            })
        });
    }
    let dp_layout = WorkerLayout::train_only(ParallelSpec::new(1, 1, 32));
    group.bench_function("Dp", |b| {
        b.iter(|| {
            let ins = Protocol::Dp.distribute(&dp_layout, &data).unwrap();
            black_box(Protocol::Dp.collect(&dp_layout, ins).unwrap())
        })
    });
    group.finish();
}

fn bench_autograd(c: &mut Criterion) {
    let lm = TinyLm::new(LmConfig::tiny(), 3);
    let seq: Vec<usize> = (0..24).map(|i| i % 32).collect();
    c.bench_function("tinylm_forward_backward", |b| {
        b.iter(|| {
            let mut fp = lm.forward(&seq[..seq.len() - 1]);
            let lp = fp.tape.gather_log_prob(fp.logits, &seq[1..]);
            let mean = fp.tape.mean_all(lp);
            let loss = fp.tape.scale(mean, -1.0);
            black_box(fp.backward(loss))
        })
    });
    c.bench_function("tinylm_generate_16", |b| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| black_box(lm.generate(&[1, 2, 3], 16, 1.0, &mut rng)))
    });
}

criterion_group!(benches, bench_collectives, bench_protocol_dispatch, bench_autograd);
criterion_main!(benches);
