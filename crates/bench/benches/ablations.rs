//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * strided vs vanilla generation grouping (the §5.3 contribution) —
//!   measured as the per-iteration transition cost each implies;
//! * single- vs multi-controller dispatch overhead (the §2.2/§2.5
//!   motivation): per-call RPC dispatch against per-operator dispatch
//!   for an LLM-sized operator graph;
//! * placement evaluation cost per named plan (the inner loop of
//!   Figure 12).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hf_hybridengine::{transition_time, EngineMode};
use hf_mapping::{AlgoKind, DataflowSpec, Mapper, PlacementPlan};
use hf_modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hf_simcluster::{ClusterSpec, CommCostModel, DeviceId};
use std::hint::black_box;

fn bench_grouping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping_ablation_transition_seconds");
    let model = ModelConfig::llama_13b();
    let spec = ParallelSpec::new(1, 8, 2);
    let cluster = ClusterSpec::a100_with_gpus(16);
    let cost = CommCostModel::default();
    let devices: Vec<DeviceId> = (0..16).map(DeviceId).collect();
    // The measured quantity is evaluation cost; the *result* (printed
    // once) is the ablation: vanilla pays (tp−1)/tp·M, strided pays
    // (tp−t_g p_g)/(t_g p_g tp)·M.
    let gen = GenGrouping::new(spec, 1, 2, GroupingMethod::Strided);
    let t_vanilla =
        transition_time(EngineMode::HybridFlowV, &model, &spec, &gen, &devices, &cluster, &cost);
    let t_strided =
        transition_time(EngineMode::HybridFlow, &model, &spec, &gen, &devices, &cluster, &cost);
    println!("[ablation] 13B transition: vanilla {t_vanilla:.3}s vs strided {t_strided:.3}s");
    for (label, mode) in [("vanilla", EngineMode::HybridFlowV), ("strided", EngineMode::HybridFlow)]
    {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(transition_time(mode, &model, &spec, &gen, &devices, &cluster, &cost))
            })
        });
    }
    group.finish();
}

fn bench_controller_dispatch_model(c: &mut Criterion) {
    // §2.2: a single controller dispatching per *operator* would pay the
    // RPC latency per operator (billions for an LLM); HybridFlow pays it
    // per *model method call* (a handful per iteration). Compare the
    // modeled dispatch budgets for one PPO iteration.
    let cost = CommCostModel::default();
    let rpc = cost.rpc_dispatch_time();
    let per_call_dispatch = 6.0 * rpc; // 6 worker-group calls per iteration
    let ops_per_layer = 64.0;
    let model = ModelConfig::llama_7b();
    let per_op_dispatch = rpc * ops_per_layer * model.layers as f64 * 3.0;
    println!(
        "[ablation] dispatch budget per iteration: hybrid {per_call_dispatch:.4}s vs single-controller-per-op {per_op_dispatch:.1}s"
    );
    c.bench_function("dispatch_model_eval", |b| {
        b.iter(|| black_box(cost.rpc_dispatch_time() * 6.0))
    });
}

fn bench_placement_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_evaluation");
    let gpus = 32;
    let perf = PerfModel::new(ClusterSpec::a100_with_gpus(gpus));
    let df = DataflowSpec::uniform(AlgoKind::Ppo, ModelConfig::llama_13b(), RlhfWorkload::paper());
    let roles = df.roles();
    for (label, plan) in [
        ("colocate", PlacementPlan::colocate(&roles)),
        ("standalone", PlacementPlan::standalone(&roles)),
        ("split", PlacementPlan::split(&roles)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &plan, |b, plan| {
            b.iter(|| {
                let mapper = Mapper::new(perf.clone(), df.clone(), gpus);
                black_box(mapper.evaluate_plan(plan))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_grouping_ablation,
    bench_controller_dispatch_model,
    bench_placement_evaluation
);
criterion_main!(benches);
