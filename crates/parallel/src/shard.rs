//! Parameter shard ownership under 3D layouts.
//!
//! A transformer's weights are partitioned along two axes: pipeline
//! parallelism splits *layers* across stages, and tensor parallelism
//! splits *each weight matrix* into column/row slices. A rank's shard is
//! therefore a rectangle in (layer × column-fraction) space. Shard
//! rectangles let us compute exactly the quantities in Table 2:
//!
//! * the overlap between a rank's training shard and generation shard
//!   (zero-redundancy means `train ⊆ gen`),
//! * the redundant memory `|train \ gen|` a rank must keep to preserve
//!   training weights during generation,
//! * the bytes each rank must fetch during the transition,
//!
//! and [`ShardLayout`] maps rectangles to concrete index ranges over a
//! flattened parameter vector, so `hf-hybridengine` can physically
//! reshard the tiny real models from `hf-nn` and assert byte equality.
//!
//! Column fractions are kept as exact rationals over a common
//! denominator, so nesting checks never suffer float error.

use serde::{Deserialize, Serialize};

use crate::groups::GenGrouping;
use crate::spec::ParallelSpec;

/// A rectangular shard: a contiguous range of layers crossed with a
/// contiguous column fraction `[col_start/col_den, col_end/col_den)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelShard {
    /// First layer (inclusive), in `0..layers_total`.
    pub layer_start: usize,
    /// Last layer (exclusive).
    pub layer_end: usize,
    /// Column-fraction numerator (inclusive).
    pub col_start: usize,
    /// Column-fraction numerator (exclusive).
    pub col_end: usize,
    /// Column-fraction denominator.
    pub col_den: usize,
    /// Total layers in the model (shared context for fraction math).
    pub layers_total: usize,
}

impl ModelShard {
    /// The full model as a single shard.
    pub fn full(layers_total: usize) -> Self {
        ModelShard {
            layer_start: 0,
            layer_end: layers_total,
            col_start: 0,
            col_end: 1,
            col_den: 1,
            layers_total,
        }
    }

    /// Fraction of the whole model this shard covers, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        let layers = (self.layer_end - self.layer_start) as f64 / self.layers_total as f64;
        let cols = (self.col_end - self.col_start) as f64 / self.col_den as f64;
        layers * cols
    }

    fn at_den(self, den: usize) -> (usize, usize) {
        assert_eq!(den % self.col_den, 0, "denominators must be compatible");
        let k = den / self.col_den;
        (self.col_start * k, self.col_end * k)
    }

    /// Fraction of the whole model covered by `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the two shards describe different `layers_total`.
    pub fn intersection_fraction(&self, other: &ModelShard) -> f64 {
        assert_eq!(self.layers_total, other.layers_total);
        let l0 = self.layer_start.max(other.layer_start);
        let l1 = self.layer_end.min(other.layer_end);
        if l1 <= l0 {
            return 0.0;
        }
        let den = lcm(self.col_den, other.col_den);
        let (a0, a1) = self.at_den(den);
        let (b0, b1) = other.at_den(den);
        let c0 = a0.max(b0);
        let c1 = a1.min(b1);
        if c1 <= c0 {
            return 0.0;
        }
        ((l1 - l0) as f64 / self.layers_total as f64) * ((c1 - c0) as f64 / den as f64)
    }

    /// Whether `self` is entirely contained in `other`.
    pub fn is_subset_of(&self, other: &ModelShard) -> bool {
        assert_eq!(self.layers_total, other.layers_total);
        if self.layer_start < other.layer_start || self.layer_end > other.layer_end {
            return false;
        }
        let den = lcm(self.col_den, other.col_den);
        let (a0, a1) = self.at_den(den);
        let (b0, b1) = other.at_den(den);
        a0 >= b0 && a1 <= b1
    }

    /// Fraction of the whole model in `self \ other` — the redundant
    /// training-weight memory of Table 2 when `self` is the training shard
    /// and `other` the generation shard.
    pub fn minus_fraction(&self, other: &ModelShard) -> f64 {
        self.fraction() - self.intersection_fraction(other)
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Training shard of `rank` under `spec`: pipeline stage `p_idx` owns the
/// `p_idx`-th slice of layers; tensor shard `t_idx` owns the `t_idx`-th
/// column fraction.
///
/// # Panics
///
/// Panics unless `spec.p` divides `layers_total`.
pub fn train_shard(spec: &ParallelSpec, rank: usize, layers_total: usize) -> ModelShard {
    assert_eq!(
        layers_total % spec.p,
        0,
        "pipeline size {} must divide layer count {layers_total}",
        spec.p
    );
    let c = spec.coords(rank);
    let per_stage = layers_total / spec.p;
    ModelShard {
        layer_start: c.p_idx * per_stage,
        layer_end: (c.p_idx + 1) * per_stage,
        col_start: c.t_idx,
        col_end: c.t_idx + 1,
        col_den: spec.t,
        layers_total,
    }
}

/// Generation shard of `rank` under `grouping` (depends on the grouping
/// method through the rank's generation coordinates).
///
/// # Panics
///
/// Panics unless `grouping.pg` divides `layers_total`.
pub fn gen_shard(grouping: &GenGrouping, rank: usize, layers_total: usize) -> ModelShard {
    assert_eq!(
        layers_total % grouping.pg,
        0,
        "generation pipeline size {} must divide layer count {layers_total}",
        grouping.pg
    );
    let gc = grouping.gen_coords(rank);
    let per_stage = layers_total / grouping.pg;
    ModelShard {
        layer_start: gc.p_idx * per_stage,
        layer_end: (gc.p_idx + 1) * per_stage,
        col_start: gc.t_idx,
        col_end: gc.t_idx + 1,
        col_den: grouping.tg,
        layers_total,
    }
}

/// Maps shard rectangles onto a concrete flattened parameter vector.
///
/// `layer_sizes[i]` is the number of scalar parameters in layer `i`; the
/// flat vector is the concatenation of layers. Within a layer, the column
/// fraction `[a/den, b/den)` maps to the proportional index subrange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    layer_sizes: Vec<usize>,
    offsets: Vec<usize>,
}

impl ShardLayout {
    /// Builds a layout from per-layer parameter counts.
    ///
    /// # Panics
    ///
    /// Panics if `layer_sizes` is empty.
    pub fn new(layer_sizes: Vec<usize>) -> Self {
        assert!(!layer_sizes.is_empty(), "model must have at least one layer");
        let mut offsets = Vec::with_capacity(layer_sizes.len() + 1);
        let mut acc = 0;
        for s in &layer_sizes {
            offsets.push(acc);
            acc += s;
        }
        offsets.push(acc);
        ShardLayout { layer_sizes, offsets }
    }

    /// A layout of `layers` equal layers of `size` parameters each.
    pub fn uniform(layers: usize, size: usize) -> Self {
        Self::new(vec![size; layers])
    }

    /// Total parameter count.
    pub fn total_params(&self) -> usize {
        *self.offsets.last().expect("offsets nonempty")
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.layer_sizes.len()
    }

    /// Concrete flat index ranges covered by `shard`, one per layer, in
    /// ascending order.
    ///
    /// # Panics
    ///
    /// Panics if the shard's `layers_total` disagrees with this layout, or
    /// if a layer size is not divisible by the shard's column denominator
    /// (tiny models are constructed to satisfy this, keeping resharding
    /// byte-exact).
    pub fn ranges(&self, shard: &ModelShard) -> Vec<std::ops::Range<usize>> {
        assert_eq!(shard.layers_total, self.layers(), "layout/shard layer mismatch");
        (shard.layer_start..shard.layer_end)
            .map(|layer| {
                let size = self.layer_sizes[layer];
                assert_eq!(
                    size % shard.col_den,
                    0,
                    "layer size {size} must be divisible by TP denominator {}",
                    shard.col_den
                );
                let unit = size / shard.col_den;
                let base = self.offsets[layer];
                base + shard.col_start * unit..base + shard.col_end * unit
            })
            .collect()
    }

    /// Number of scalar parameters in `shard` under this layout.
    pub fn shard_params(&self, shard: &ModelShard) -> usize {
        self.ranges(shard).iter().map(|r| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::GroupingMethod;

    #[test]
    fn train_shards_tile_the_model() {
        let spec = ParallelSpec::new(2, 4, 2);
        let total: f64 = (0..spec.world()).map(|r| train_shard(&spec, r, 8).fraction()).sum();
        // d replicas each cover the full model once.
        assert!((total - spec.d as f64).abs() < 1e-12);
    }

    #[test]
    fn strided_grouping_is_zero_redundancy() {
        // Figure 8(b): every rank's training shard nests in its generation
        // shard under the strided method.
        let g = GenGrouping::new(ParallelSpec::new(1, 4, 2), 1, 2, GroupingMethod::Strided);
        for rank in 0..8 {
            let tr = train_shard(&g.train, rank, 4);
            let ge = gen_shard(&g, rank, 4);
            assert!(tr.is_subset_of(&ge), "rank {rank}");
            assert_eq!(tr.minus_fraction(&ge), 0.0);
        }
    }

    #[test]
    fn vanilla_grouping_has_redundancy_on_some_ranks() {
        // Figure 8(a): G2, G3 (ranks 1, 2) keep redundant training weights.
        let g = GenGrouping::new(ParallelSpec::new(1, 4, 2), 1, 2, GroupingMethod::Vanilla);
        let mut redundant = 0;
        for rank in 0..8 {
            let tr = train_shard(&g.train, rank, 4);
            let ge = gen_shard(&g, rank, 4);
            if tr.minus_fraction(&ge) > 0.0 {
                redundant += 1;
                // The worst case is the full training shard, M/(t·p).
                assert!((tr.minus_fraction(&ge) - 0.25).abs() < 1e-12);
            }
        }
        assert_eq!(redundant, 4, "paper: G2, G3, G6, G7 hold redundant weights");
    }

    #[test]
    fn micro_dp_group_training_shards_tile_the_generation_shard() {
        // The strided transition gathers exactly the micro-DP group's
        // training shards to reconstruct each member's generation shard.
        let g = GenGrouping::new(ParallelSpec::new(2, 4, 1), 1, 2, GroupingMethod::Strided);
        for grp in g.micro_dp_groups() {
            let ge = gen_shard(&g, grp[0], 8);
            let sum: f64 =
                grp.iter().map(|&r| train_shard(&g.train, r, 8).intersection_fraction(&ge)).sum();
            assert!((sum - ge.fraction()).abs() < 1e-12);
            for &r in &grp {
                assert!(train_shard(&g.train, r, 8).is_subset_of(&ge));
            }
        }
    }

    #[test]
    fn shard_layout_ranges_are_exact() {
        let layout = ShardLayout::uniform(4, 16);
        assert_eq!(layout.total_params(), 64);
        let spec = ParallelSpec::new(2, 4, 1);
        let sh = train_shard(
            &spec,
            spec.rank_of(crate::spec::TrainCoord { d_idx: 0, p_idx: 1, t_idx: 2 }),
            4,
        );
        let ranges = layout.ranges(&sh);
        // Stage 1 owns layers 2..4; shard 2/4 owns the third quarter.
        assert_eq!(ranges, vec![32 + 8..32 + 12, 48 + 8..48 + 12]);
        assert_eq!(layout.shard_params(&sh), 8);
    }

    #[test]
    fn layout_shard_params_match_fraction() {
        let layout = ShardLayout::uniform(8, 32);
        let spec = ParallelSpec::new(2, 4, 2);
        for rank in 0..spec.world() {
            let sh = train_shard(&spec, rank, 8);
            let params = layout.shard_params(&sh);
            let expect = (layout.total_params() as f64 * sh.fraction()).round() as usize;
            assert_eq!(params, expect);
        }
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn layout_rejects_indivisible_tp() {
        let layout = ShardLayout::uniform(2, 7);
        let spec = ParallelSpec::new(1, 2, 1);
        layout.ranges(&train_shard(&spec, 0, 2));
    }
}
