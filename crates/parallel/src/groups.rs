//! Generation-stage parallel grouping (`p_g-t_g-d_g-d`, paper §5.1, §5.3).
//!
//! Actor training and generation share the same `N_a = p·t·d` GPUs but
//! may use different 3D layouts. Each training DP replica is split into
//! `d_g = (p·t)/(p_g·t_g)` *micro data-parallel* replicas for generation.
//!
//! Two grouping methods are implemented:
//!
//! * [`GroupingMethod::Vanilla`] (HybridFlow-V): generation TP/PP groups
//!   are built from consecutive ranks, like training groups. On some GPUs
//!   the generation shard does not overlap the training shard, requiring
//!   redundant weight memory (Table 2, column "HybridFlow-V").
//! * [`GroupingMethod::Strided`] (HybridFlow): generation TP and PP
//!   groups select ranks at regular intervals `t/t_g` and `p/p_g`, and
//!   micro-DP groups take consecutive ranks. Every rank's training shard
//!   is then a sub-slice of its generation shard, so the transition needs
//!   only one all-gather per micro-DP group and zero redundant memory.

use serde::{Deserialize, Serialize};

use crate::spec::ParallelSpec;

/// How generation parallel groups are formed from training ranks (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupingMethod {
    /// Consecutive-rank grouping (the HybridFlow-V strawman).
    Vanilla,
    /// Interval grouping with consecutive micro-DP ranks (zero redundancy).
    Strided,
}

/// Coordinates of a rank in the generation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GenCoord {
    /// Global generation replica index in `0..d·d_g`.
    pub replica: usize,
    /// Generation pipeline stage index in `0..p_g`.
    pub p_idx: usize,
    /// Generation tensor shard index in `0..t_g`.
    pub t_idx: usize,
    /// Micro-DP index within the training replica, in `0..d_g`.
    pub micro_idx: usize,
}

/// A generation layout bound to a training layout.
///
/// # Examples
///
/// Figure 8(b): the strided zero-redundancy grouping on 8 GPUs.
///
/// ```
/// use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec};
///
/// let g = GenGrouping::new(ParallelSpec::new(1, 4, 2), 1, 2, GroupingMethod::Strided);
/// assert_eq!(g.dg(), 2); // each training replica splits into 2 micro replicas
/// assert_eq!(g.gen_tp_groups()[0], vec![0, 2]); // strided, not consecutive
/// assert_eq!(g.micro_dp_groups()[0], vec![0, 1]); // the all-gather groups
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GenGrouping {
    /// The training layout (`p-t-d`).
    pub train: ParallelSpec,
    /// Generation pipeline-parallel size.
    pub pg: usize,
    /// Generation tensor-parallel size.
    pub tg: usize,
    /// Grouping method.
    pub method: GroupingMethod,
}

impl GenGrouping {
    /// Creates a generation grouping.
    ///
    /// # Panics
    ///
    /// Panics unless `p_g` divides `p` and `t_g` divides `t` (the paper's
    /// construction requires interval strides `p/p_g` and `t/t_g`; the
    /// vanilla method shares the constraint so the two are comparable).
    pub fn new(train: ParallelSpec, pg: usize, tg: usize, method: GroupingMethod) -> Self {
        assert!(pg >= 1 && tg >= 1);
        assert!(
            train.p.is_multiple_of(pg),
            "generation PP size {pg} must divide training PP size {}",
            train.p
        );
        assert!(
            train.t.is_multiple_of(tg),
            "generation TP size {tg} must divide training TP size {}",
            train.t
        );
        GenGrouping { train, pg, tg, method }
    }

    /// Micro data-parallel size `d_g = (p·t)/(p_g·t_g)`.
    pub fn dg(&self) -> usize {
        self.train.mp() / (self.pg * self.tg)
    }

    /// Total generation replicas `d·d_g`.
    pub fn gen_replicas_total(&self) -> usize {
        self.train.d * self.dg()
    }

    /// Generation coordinates of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn gen_coords(&self, rank: usize) -> GenCoord {
        let tc = self.train.coords(rank);
        match self.method {
            GroupingMethod::Vanilla => {
                // Within the training replica, consecutive blocks of
                // p_g·t_g ranks form one generation replica.
                let local = tc.p_idx * self.train.t + tc.t_idx;
                let block = self.pg * self.tg;
                let micro_idx = local / block;
                let in_block = local % block;
                GenCoord {
                    replica: tc.d_idx * self.dg() + micro_idx,
                    p_idx: in_block / self.tg,
                    t_idx: in_block % self.tg,
                    micro_idx,
                }
            }
            GroupingMethod::Strided => {
                let sp = self.train.p / self.pg;
                let st = self.train.t / self.tg;
                let p_idx = tc.p_idx / sp;
                let t_idx = tc.t_idx / st;
                let micro_idx = (tc.p_idx % sp) * st + tc.t_idx % st;
                GenCoord { replica: tc.d_idx * self.dg() + micro_idx, p_idx, t_idx, micro_idx }
            }
        }
    }

    fn groups_by_key<K: Ord>(&self, key: impl Fn(usize) -> K) -> Vec<Vec<usize>> {
        let mut tagged: Vec<(K, usize)> = (0..self.train.world()).map(|r| (key(r), r)).collect();
        tagged.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out: Vec<Vec<usize>> = Vec::new();
        let mut prev: Option<&K> = None;
        for (k, r) in tagged.iter() {
            if prev.map(|p| p == k) == Some(true) {
                out.last_mut().expect("group exists").push(*r);
            } else {
                out.push(vec![*r]);
            }
            prev = Some(k);
        }
        out
    }

    /// Micro-DP groups: ranks of the same training replica holding the
    /// same generation shard position. The transition all-gather runs one
    /// collective inside each of these groups (§5.3).
    pub fn micro_dp_groups(&self) -> Vec<Vec<usize>> {
        self.groups_by_key(|r| {
            let tc = self.train.coords(r);
            let gc = self.gen_coords(r);
            (tc.d_idx, gc.p_idx, gc.t_idx)
        })
    }

    /// Generation tensor-parallel groups.
    pub fn gen_tp_groups(&self) -> Vec<Vec<usize>> {
        self.groups_by_key(|r| {
            let gc = self.gen_coords(r);
            (gc.replica, gc.p_idx)
        })
    }

    /// Generation pipeline-parallel groups.
    pub fn gen_pp_groups(&self) -> Vec<Vec<usize>> {
        self.groups_by_key(|r| {
            let gc = self.gen_coords(r);
            (gc.replica, gc.t_idx)
        })
    }

    /// Full generation replicas (each processes one micro-batch of
    /// prompts).
    pub fn gen_replica_groups(&self) -> Vec<Vec<usize>> {
        self.groups_by_key(|r| self.gen_coords(r).replica)
    }

    /// The micro-DP group containing `rank`.
    ///
    /// Derived arithmetically from the stride construction (O(d_g)
    /// instead of the old O(world) filter over every rank's coords —
    /// which made building all per-rank communicators O(world²)). The
    /// group holds the `d_g` ranks of `rank`'s training replica whose
    /// generation coords share `(p_idx, t_idx)`, ascending (= micro_idx
    /// order), matching [`Self::micro_dp_groups`].
    pub fn micro_dp_group_of(&self, rank: usize) -> Vec<usize> {
        let tc = self.train.coords(rank);
        let gc = self.gen_coords(rank);
        let base = tc.d_idx * self.train.mp();
        match self.method {
            GroupingMethod::Vanilla => {
                // Fixed position inside each consecutive p_g·t_g block;
                // one member per micro replica.
                let block = self.pg * self.tg;
                let in_block = gc.p_idx * self.tg + gc.t_idx;
                (0..self.dg()).map(|micro| base + micro * block + in_block).collect()
            }
            GroupingMethod::Strided => {
                // Members sweep the p-stride × t-stride offsets of the
                // rank's generation coordinate cell.
                let sp = self.train.p / self.pg;
                let st = self.train.t / self.tg;
                let mut out = Vec::with_capacity(self.dg());
                for p_off in 0..sp {
                    for t_off in 0..st {
                        let p_idx = gc.p_idx * sp + p_off;
                        let t_idx = gc.t_idx * st + t_off;
                        out.push(base + p_idx * self.train.t + t_idx);
                    }
                }
                out
            }
        }
    }

    /// Reference implementation of [`Self::micro_dp_group_of`]: the
    /// original O(world) filter over every rank's coordinates. Kept as
    /// the oracle the equivalence proptest pins the arithmetic
    /// derivation against.
    pub fn micro_dp_group_of_filter(&self, rank: usize) -> Vec<usize> {
        let tc = self.train.coords(rank);
        let gc = self.gen_coords(rank);
        (0..self.train.world())
            .filter(|&r| {
                let tc2 = self.train.coords(r);
                let gc2 = self.gen_coords(r);
                tc2.d_idx == tc.d_idx && gc2.p_idx == gc.p_idx && gc2.t_idx == gc.t_idx
            })
            .collect()
    }
}

impl std::fmt::Display for GenGrouping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}-{}-{}", self.pg, self.tg, self.dg(), self.train.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 8 setting: 8 GPUs, training 1-4-2, generation 1-2-2-2.
    fn fig8(method: GroupingMethod) -> GenGrouping {
        GenGrouping::new(ParallelSpec::new(1, 4, 2), 1, 2, method)
    }

    #[test]
    fn dg_matches_paper_formula() {
        let g = fig8(GroupingMethod::Strided);
        assert_eq!(g.dg(), 2);
        assert_eq!(g.gen_replicas_total(), 4);
        assert_eq!(g.to_string(), "1-2-2-2");
    }

    #[test]
    fn fig8a_vanilla_groups() {
        // Paper Figure 8(a): generation TP groups are consecutive pairs
        // [G1,G2],[G3,G4],[G5,G6],[G7,G8] (0-indexed).
        let g = fig8(GroupingMethod::Vanilla);
        assert_eq!(g.gen_tp_groups(), vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
        // Micro-DP groups stride across the two generation replicas of a
        // training replica: [G1,G3],[G2,G4],[G5,G7],[G6,G8].
        assert_eq!(g.micro_dp_groups(), vec![vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]]);
    }

    #[test]
    fn fig8b_strided_groups() {
        // Paper Figure 8(b): generation TP groups [G1,G3],[G2,G4],[G5,G7],
        // [G6,G8]; micro-DP groups [G1,G2],[G3,G4],[G5,G6],[G7,G8].
        let g = fig8(GroupingMethod::Strided);
        assert_eq!(g.gen_tp_groups(), vec![vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]]);
        assert_eq!(g.micro_dp_groups(), vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
    }

    #[test]
    fn all_group_families_partition_ranks() {
        for method in [GroupingMethod::Vanilla, GroupingMethod::Strided] {
            let g = GenGrouping::new(ParallelSpec::new(2, 4, 2), 1, 2, method);
            for groups in
                [g.micro_dp_groups(), g.gen_tp_groups(), g.gen_pp_groups(), g.gen_replica_groups()]
            {
                let mut all: Vec<usize> = groups.into_iter().flatten().collect();
                all.sort_unstable();
                assert_eq!(all, (0..16).collect::<Vec<_>>(), "method {method:?}");
            }
        }
    }

    #[test]
    fn micro_dp_group_sizes_equal_dg() {
        let g = GenGrouping::new(ParallelSpec::new(2, 8, 2), 1, 2, GroupingMethod::Strided);
        assert_eq!(g.dg(), 8);
        for grp in g.micro_dp_groups() {
            assert_eq!(grp.len(), 8);
        }
        for grp in g.gen_replica_groups() {
            assert_eq!(grp.len(), 2); // p_g·t_g
        }
    }

    #[test]
    fn micro_dp_group_of_is_consistent() {
        let g = GenGrouping::new(ParallelSpec::new(2, 4, 2), 2, 2, GroupingMethod::Strided);
        for rank in 0..16 {
            let grp = g.micro_dp_group_of(rank);
            assert!(grp.contains(&rank));
            assert!(g.micro_dp_groups().contains(&grp));
        }
    }

    #[test]
    fn identical_layouts_make_singleton_micro_groups() {
        // t_g = t, p_g = p (NeMo-Aligner style): d_g = 1, nothing to gather.
        let g = GenGrouping::new(ParallelSpec::new(2, 4, 2), 2, 4, GroupingMethod::Strided);
        assert_eq!(g.dg(), 1);
        for grp in g.micro_dp_groups() {
            assert_eq!(grp.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_tp_rejected() {
        GenGrouping::new(ParallelSpec::new(1, 4, 1), 1, 3, GroupingMethod::Strided);
    }
}
