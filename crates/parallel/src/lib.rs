//! 3D parallelism substrate: rank grids, parallel groups, and parameter
//! shard ownership (paper §2.1, §5.1, §5.3).
//!
//! * [`spec`] — the `p-t-d` training layout ([`spec::ParallelSpec`]) and
//!   rank ↔ coordinate maps following Megatron-LM's vanilla grouping:
//!   consecutive ranks form tensor shards, then pipeline stages, and DP
//!   groups are strided by `p·t`.
//! * [`groups`] — the generation-stage layout `p_g-t_g-d_g-d`
//!   ([`groups::GenGrouping`]) with both parallel grouping methods from
//!   §5.3: `Vanilla` (HybridFlow-V) and the paper's zero-redundancy
//!   `Strided` method, plus micro-DP / generation-TP / generation-PP
//!   group enumeration.
//! * [`shard`] — which slice of the model each rank owns under a layout:
//!   2-D (layer-range × column-fraction) rectangles whose intersections
//!   drive the Table 2 redundancy accounting and the functional
//!   resharding in `hf-hybridengine`.
//! * [`zero`] — ZeRO / FSDP flat sharding descriptors for the baseline
//!   engines.

#![warn(missing_docs)]

pub mod groups;
pub mod shard;
pub mod spec;
pub mod zero;

pub use groups::{GenCoord, GenGrouping, GroupingMethod};
pub use shard::{ModelShard, ShardLayout};
pub use spec::{ParallelSpec, TrainCoord};
pub use zero::{ZeroSpec, ZeroStage};
