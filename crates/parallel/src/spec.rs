//! Training-stage 3D parallel layout (`p-t-d`) and rank coordinates.
//!
//! Rank layout follows the vanilla Megatron-LM grouping the paper
//! describes in §5.3: "PP and TP groups are formed by assigning
//! consecutive ranks to pipeline stages and tensor shards, respectively;
//! DP groups are constructed by selecting ranks at regular intervals,
//! determined by the product of PP size and TP size." Concretely,
//!
//! ```text
//! rank = d_idx · (p·t) + p_idx · t + t_idx
//! ```

use serde::{Deserialize, Serialize};

/// A 3D parallel configuration: `p` pipeline stages, `t` tensor shards,
/// `d` data-parallel replicas (paper notation `p-t-d`).
///
/// # Examples
///
/// The paper's Figure 8 training layout, `1-4-2` on 8 GPUs:
///
/// ```
/// use hf_parallel::ParallelSpec;
///
/// let spec = ParallelSpec::new(1, 4, 2);
/// assert_eq!(spec.world(), 8);
/// assert_eq!(spec.tp_groups(), vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
/// assert_eq!(spec.dp_groups()[0], vec![0, 4]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelSpec {
    /// Pipeline-parallel size (number of pipeline stages).
    pub p: usize,
    /// Tensor-parallel size (number of tensor shards).
    pub t: usize,
    /// Data-parallel size (number of model replicas).
    pub d: usize,
}

/// Coordinates of a rank in the training grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrainCoord {
    /// Data-parallel replica index.
    pub d_idx: usize,
    /// Pipeline stage index.
    pub p_idx: usize,
    /// Tensor shard index.
    pub t_idx: usize,
}

impl ParallelSpec {
    /// Creates a layout; all sizes must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn new(p: usize, t: usize, d: usize) -> Self {
        assert!(p >= 1 && t >= 1 && d >= 1, "parallel sizes must be >= 1");
        ParallelSpec { p, t, d }
    }

    /// Total number of ranks, `p·t·d`.
    pub fn world(&self) -> usize {
        self.p * self.t * self.d
    }

    /// Model-parallel size `p·t` (the number of partitions the model is
    /// split into, paper §2.3).
    pub fn mp(&self) -> usize {
        self.p * self.t
    }

    /// Grid coordinates of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world()`.
    pub fn coords(&self, rank: usize) -> TrainCoord {
        assert!(rank < self.world(), "rank {rank} out of range for {self:?}");
        let mp = self.mp();
        TrainCoord { d_idx: rank / mp, p_idx: (rank % mp) / self.t, t_idx: rank % self.t }
    }

    /// Inverse of [`ParallelSpec::coords`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn rank_of(&self, c: TrainCoord) -> usize {
        assert!(c.d_idx < self.d && c.p_idx < self.p && c.t_idx < self.t);
        c.d_idx * self.mp() + c.p_idx * self.t + c.t_idx
    }

    /// All tensor-parallel groups: consecutive runs of `t` ranks.
    pub fn tp_groups(&self) -> Vec<Vec<usize>> {
        (0..self.d * self.p).map(|g| (g * self.t..(g + 1) * self.t).collect()).collect()
    }

    /// All pipeline-parallel groups: ranks with equal `(d_idx, t_idx)`.
    pub fn pp_groups(&self) -> Vec<Vec<usize>> {
        let mut groups = Vec::with_capacity(self.d * self.t);
        for d_idx in 0..self.d {
            for t_idx in 0..self.t {
                groups.push(
                    (0..self.p)
                        .map(|p_idx| self.rank_of(TrainCoord { d_idx, p_idx, t_idx }))
                        .collect(),
                );
            }
        }
        groups
    }

    /// All data-parallel groups: ranks strided by `p·t`.
    pub fn dp_groups(&self) -> Vec<Vec<usize>> {
        let mp = self.mp();
        (0..mp).map(|base| (0..self.d).map(|k| base + k * mp).collect()).collect()
    }

    /// All model-parallel groups (one full model replica each): consecutive
    /// runs of `p·t` ranks.
    pub fn mp_groups(&self) -> Vec<Vec<usize>> {
        let mp = self.mp();
        (0..self.d).map(|d_idx| (d_idx * mp..(d_idx + 1) * mp).collect()).collect()
    }

    /// The TP group containing `rank`.
    pub fn tp_group_of(&self, rank: usize) -> Vec<usize> {
        let base = rank / self.t * self.t;
        (base..base + self.t).collect()
    }

    /// The DP group containing `rank`.
    pub fn dp_group_of(&self, rank: usize) -> Vec<usize> {
        let mp = self.mp();
        let base = rank % mp;
        (0..self.d).map(|k| base + k * mp).collect()
    }

    /// The model-parallel group (full replica) containing `rank`.
    pub fn mp_group_of(&self, rank: usize) -> Vec<usize> {
        let mp = self.mp();
        let base = rank / mp * mp;
        (base..base + mp).collect()
    }

    /// Whether this rank is in the last pipeline stage (which holds the
    /// model output; the `3D_PROTO` collect function reads from `p = -1`,
    /// paper Table 3).
    pub fn is_last_stage(&self, rank: usize) -> bool {
        self.coords(rank).p_idx == self.p - 1
    }
}

impl std::fmt::Display for ParallelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}-{}", self.p, self.t, self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure8_training_groups() {
        // Figure 8(a): 8 GPUs, training layout 1-4-2.
        let s = ParallelSpec::new(1, 4, 2);
        assert_eq!(s.world(), 8);
        // TP groups [G1..G4], [G5..G8] (0-indexed: 0..4, 4..8).
        assert_eq!(s.tp_groups(), vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        // DP groups [G1,G5], [G2,G6], [G3,G7], [G4,G8].
        assert_eq!(s.dp_groups(), vec![vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]]);
    }

    #[test]
    fn coords_round_trip() {
        let s = ParallelSpec::new(2, 4, 3);
        for rank in 0..s.world() {
            assert_eq!(s.rank_of(s.coords(rank)), rank);
        }
    }

    #[test]
    fn groups_partition_the_world() {
        let s = ParallelSpec::new(2, 2, 2);
        for groups in [s.tp_groups(), s.pp_groups(), s.dp_groups(), s.mp_groups()] {
            let mut all: Vec<usize> = groups.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pp_group_membership() {
        let s = ParallelSpec::new(2, 2, 1);
        // Ranks: p0t0=0, p0t1=1, p1t0=2, p1t1=3.
        assert_eq!(s.pp_groups(), vec![vec![0, 2], vec![1, 3]]);
        assert!(s.is_last_stage(2));
        assert!(!s.is_last_stage(0));
    }

    #[test]
    fn group_of_matches_enumeration() {
        let s = ParallelSpec::new(2, 2, 2);
        for rank in 0..s.world() {
            assert!(s.tp_groups().contains(&s.tp_group_of(rank)));
            assert!(s.dp_groups().contains(&s.dp_group_of(rank)));
            assert!(s.mp_groups().contains(&s.mp_group_of(rank)));
            assert!(s.tp_group_of(rank).contains(&rank));
            assert!(s.dp_group_of(rank).contains(&rank));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_rejects_out_of_range() {
        ParallelSpec::new(1, 2, 2).coords(4);
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(ParallelSpec::new(1, 8, 2).to_string(), "1-8-2");
    }
}
