//! ZeRO / FSDP sharding descriptors for baseline engines (paper §2.1).
//!
//! ZeRO progressively shards optimizer states (stage 1), gradients
//! (stage 2), and model parameters (stage 3) across the data-parallel
//! group. DeepSpeed-Chat and OpenRLHF train the actor with ZeRO-3, which
//! is what makes their transitions expensive: parameters live scattered
//! 1/N per GPU and must be fully all-gathered for generation.

use serde::{Deserialize, Serialize};

/// ZeRO optimization stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZeroStage {
    /// Shard optimizer states only.
    Stage1,
    /// Shard optimizer states and gradients.
    Stage2,
    /// Shard optimizer states, gradients, and parameters (FSDP-like).
    Stage3,
}

/// A ZeRO data-parallel sharding over `world` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ZeroSpec {
    /// Stage of state partitioning.
    pub stage: ZeroStage,
    /// Number of ranks sharing the shards.
    pub world: usize,
}

impl ZeroSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `world` is zero.
    pub fn new(stage: ZeroStage, world: usize) -> Self {
        assert!(world >= 1);
        ZeroSpec { stage, world }
    }

    /// Fraction of the *parameters* resident on each rank.
    pub fn param_fraction(&self) -> f64 {
        match self.stage {
            ZeroStage::Stage1 | ZeroStage::Stage2 => 1.0,
            ZeroStage::Stage3 => 1.0 / self.world as f64,
        }
    }

    /// Fraction of the *gradients* resident on each rank.
    pub fn grad_fraction(&self) -> f64 {
        match self.stage {
            ZeroStage::Stage1 => 1.0,
            ZeroStage::Stage2 | ZeroStage::Stage3 => 1.0 / self.world as f64,
        }
    }

    /// Fraction of the *optimizer states* resident on each rank.
    pub fn optim_fraction(&self) -> f64 {
        1.0 / self.world as f64
    }

    /// Extra communication multiplier for the forward+backward pass,
    /// relative to plain DP: ZeRO-3 must all-gather parameters in both the
    /// forward and the backward pass (≈ 1.5× the volume of the gradient
    /// all-reduce alone, i.e. 3 parameter-sized ring phases vs 2).
    pub fn comm_multiplier(&self) -> f64 {
        match self.stage {
            ZeroStage::Stage1 | ZeroStage::Stage2 => 1.0,
            ZeroStage::Stage3 => 1.5,
        }
    }

    /// The flat parameter index range owned by `rank` out of `total`
    /// parameters under ZeRO-3 (proportional split; ranks `0..world`).
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world`.
    pub fn param_range(&self, rank: usize, total: usize) -> std::ops::Range<usize> {
        assert!(rank < self.world);
        match self.stage {
            ZeroStage::Stage1 | ZeroStage::Stage2 => 0..total,
            ZeroStage::Stage3 => total * rank / self.world..total * (rank + 1) / self.world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage3_shards_everything() {
        let z = ZeroSpec::new(ZeroStage::Stage3, 8);
        assert!((z.param_fraction() - 0.125).abs() < 1e-12);
        assert!((z.grad_fraction() - 0.125).abs() < 1e-12);
        assert!((z.optim_fraction() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn stage1_shards_only_optimizer() {
        let z = ZeroSpec::new(ZeroStage::Stage1, 4);
        assert_eq!(z.param_fraction(), 1.0);
        assert_eq!(z.grad_fraction(), 1.0);
        assert!((z.optim_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stage3_ranges_tile_params() {
        let z = ZeroSpec::new(ZeroStage::Stage3, 3);
        let total = 10;
        let mut covered = 0;
        for r in 0..3 {
            covered += z.param_range(r, total).len();
        }
        assert_eq!(covered, total);
        assert_eq!(z.param_range(0, total).start, 0);
        assert_eq!(z.param_range(2, total).end, total);
    }

    #[test]
    fn stage2_keeps_full_params_local() {
        let z = ZeroSpec::new(ZeroStage::Stage2, 4);
        assert_eq!(z.param_range(1, 100), 0..100);
        assert_eq!(z.comm_multiplier(), 1.0);
        assert_eq!(ZeroSpec::new(ZeroStage::Stage3, 4).comm_multiplier(), 1.5);
    }
}
