//! Property tests for parallel-group construction and shard ownership.

use hf_parallel::shard::{gen_shard, train_shard};
use hf_parallel::{GenGrouping, GroupingMethod, ParallelSpec, ShardLayout};
use proptest::prelude::*;

/// Power-of-two in `[1, max]`.
fn pow2(max_exp: u32) -> impl Strategy<Value = usize> {
    (0..=max_exp).prop_map(|e| 1usize << e)
}

fn layouts() -> impl Strategy<Value = (ParallelSpec, usize, usize)> {
    (pow2(2), pow2(3), pow2(2)).prop_flat_map(|(p, t, d)| {
        let spec = ParallelSpec::new(p, t, d);
        let pg = (0..=p.ilog2()).prop_map(move |e| 1usize << e);
        let tg = (0..=t.ilog2()).prop_map(move |e| 1usize << e);
        (Just(spec), pg, tg)
    })
}

proptest! {
    #[test]
    fn coords_round_trip((spec, _, _) in layouts()) {
        for rank in 0..spec.world() {
            prop_assert_eq!(spec.rank_of(spec.coords(rank)), rank);
        }
    }

    #[test]
    fn every_group_family_partitions_the_world((spec, pg, tg) in layouts(),
                                               strided in any::<bool>()) {
        let method = if strided { GroupingMethod::Strided } else { GroupingMethod::Vanilla };
        let g = GenGrouping::new(spec, pg, tg, method);
        let world: Vec<usize> = (0..spec.world()).collect();
        for groups in [
            spec.tp_groups(), spec.pp_groups(), spec.dp_groups(), spec.mp_groups(),
            g.micro_dp_groups(), g.gen_tp_groups(), g.gen_pp_groups(), g.gen_replica_groups(),
        ] {
            let mut all: Vec<usize> = groups.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(&all, &world);
        }
    }

    #[test]
    fn group_sizes_match_theory((spec, pg, tg) in layouts()) {
        let g = GenGrouping::new(spec, pg, tg, GroupingMethod::Strided);
        let dg = spec.mp() / (pg * tg);
        prop_assert_eq!(g.dg(), dg);
        for grp in g.micro_dp_groups() {
            prop_assert_eq!(grp.len(), dg);
        }
        for grp in g.gen_tp_groups() {
            prop_assert_eq!(grp.len(), tg);
        }
        for grp in g.gen_replica_groups() {
            prop_assert_eq!(grp.len(), pg * tg);
        }
    }

    #[test]
    fn strided_grouping_is_always_zero_redundancy((spec, pg, tg) in layouts()) {
        // The paper's §5.3 claim, for every valid configuration: each
        // rank's training shard nests inside its generation shard.
        let g = GenGrouping::new(spec, pg, tg, GroupingMethod::Strided);
        let layers = spec.p.max(g.pg) * 4; // divisible by both pipeline sizes
        for rank in 0..spec.world() {
            let tr = train_shard(&spec, rank, layers);
            let ge = gen_shard(&g, rank, layers);
            prop_assert!(tr.is_subset_of(&ge), "rank {} under {}->{}-{}", rank, spec, pg, tg);
        }
    }

    #[test]
    fn micro_dp_shards_tile_generation_shard((spec, pg, tg) in layouts()) {
        let g = GenGrouping::new(spec, pg, tg, GroupingMethod::Strided);
        let layers = spec.p.max(g.pg) * 4;
        for grp in g.micro_dp_groups() {
            let ge = gen_shard(&g, grp[0], layers);
            let covered: f64 = grp
                .iter()
                .map(|&r| train_shard(&spec, r, layers).intersection_fraction(&ge))
                .sum();
            prop_assert!((covered - ge.fraction()).abs() < 1e-9);
        }
    }

    #[test]
    fn micro_dp_group_of_matches_filter_oracle((spec, pg, tg) in layouts(),
                                               strided in any::<bool>()) {
        // Regression (hf-audit satellite): micro_dp_group_of is now
        // derived arithmetically from the stride construction; it must
        // agree with the original filter-over-the-world version on every
        // rank of every sampled layout, for both grouping methods.
        let method = if strided { GroupingMethod::Strided } else { GroupingMethod::Vanilla };
        let g = GenGrouping::new(spec, pg, tg, method);
        for rank in 0..spec.world() {
            prop_assert_eq!(g.micro_dp_group_of(rank), g.micro_dp_group_of_filter(rank),
                            "rank {} of {} ({:?})", rank, spec, method);
        }
    }

    #[test]
    fn shard_layout_params_sum_to_total((spec, _, _) in layouts(),
                                        layer_size in (1usize..8).prop_map(|k| k * 64)) {
        let layers = spec.p * 4;
        let layout = ShardLayout::uniform(layers, layer_size);
        // One DP replica's training shards cover the model exactly once.
        let replica: Vec<usize> = (0..spec.mp()).collect();
        let total: usize = replica
            .iter()
            .map(|&r| layout.shard_params(&train_shard(&spec, r, layers)))
            .sum();
        prop_assert_eq!(total, layout.total_params());
    }
}
