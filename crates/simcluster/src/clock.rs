//! Virtual time.
//!
//! Every simulated rank owns a [`VirtualClock`], a monotone `f64` number
//! of seconds. Compute operations advance the local clock by their
//! analytic latency; collectives synchronize all participants to the
//! maximum clock plus the collective's cost; point-to-point receives
//! advance the receiver to `max(recv, send + cost)`. Stage latency is the
//! maximum clock over the ranks involved.

/// A per-rank monotone virtual clock in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "clock advance must be finite and non-negative, got {seconds}"
        );
        self.now += seconds;
    }

    /// Moves the clock forward to `at` if `at` is later; never rewinds.
    pub fn sync_to(&mut self, at: f64) {
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sync_never_rewinds() {
        let mut c = VirtualClock::new();
        c.advance(3.0);
        c.sync_to(1.0);
        assert!((c.now() - 3.0).abs() < 1e-12);
        c.sync_to(5.0);
        assert!((c.now() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }
}
