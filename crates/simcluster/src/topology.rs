//! Cluster topology: GPUs, machines, and virtualized resource pools.
//!
//! The paper's testbed (§8.1) is 16 machines × 8 A100-80GB, NVLink
//! 600 GB/s intra-machine, 200 Gbps inter-machine. [`GpuSpec::a100_80g`]
//! and [`ClusterSpec::a100_cluster`] reproduce those constants; other
//! shapes can be constructed for what-if studies.

use serde::{Deserialize, Serialize};

/// Identifier of a single GPU device in the cluster (global, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Performance characteristics of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense BF16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM capacity in bytes.
    pub memory_bytes: f64,
    /// HBM bandwidth in bytes/s.
    pub memory_bandwidth: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80GB SXM: 312 TFLOP/s BF16, 80 GB HBM2e at ~2.0 TB/s.
    pub fn a100_80g() -> Self {
        GpuSpec { peak_flops: 312e12, memory_bytes: 80e9, memory_bandwidth: 2.0e12 }
    }

    /// NVIDIA A100-40GB SXM: same compute, half the memory.
    pub fn a100_40g() -> Self {
        GpuSpec { peak_flops: 312e12, memory_bytes: 40e9, memory_bandwidth: 1.56e12 }
    }

    /// NVIDIA H100 SXM: 989 TFLOP/s BF16, 80 GB HBM3 at 3.35 TB/s.
    pub fn h100() -> Self {
        GpuSpec { peak_flops: 989e12, memory_bytes: 80e9, memory_bandwidth: 3.35e12 }
    }

    /// A smaller GPU useful for tests (1 TFLOP/s, 16 GB, 100 GB/s).
    pub fn tiny() -> Self {
        GpuSpec { peak_flops: 1e12, memory_bytes: 16e9, memory_bandwidth: 100e9 }
    }
}

/// A machine: a set of GPUs sharing a fast intra-machine interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of GPUs per machine.
    pub gpus: usize,
    /// Per-GPU intra-machine interconnect bandwidth in bytes/s (NVLink).
    pub intra_bandwidth: f64,
    /// Per-machine network bandwidth in bytes/s (NIC, shared by its GPUs).
    pub inter_bandwidth: f64,
}

impl MachineSpec {
    /// DGX-like machine: 8 GPUs, 600 GB/s NVLink, 200 Gbps NIC.
    pub fn dgx_a100() -> Self {
        MachineSpec { gpus: 8, intra_bandwidth: 600e9, inter_bandwidth: 200e9 / 8.0 }
    }
}

/// A homogeneous cluster of machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// GPU model used throughout the cluster.
    pub gpu: GpuSpec,
    /// Machine shape used throughout the cluster.
    pub machine: MachineSpec,
    /// Number of machines.
    pub machines: usize,
}

impl ClusterSpec {
    /// The paper's testbed: `machines` × 8 A100-80GB (16 machines = 128 GPUs).
    pub fn a100_cluster(machines: usize) -> Self {
        ClusterSpec { gpu: GpuSpec::a100_80g(), machine: MachineSpec::dgx_a100(), machines }
    }

    /// A cluster sized to hold exactly `gpus` A100s (8 per machine, rounded up).
    pub fn a100_with_gpus(gpus: usize) -> Self {
        Self::a100_cluster(gpus.div_ceil(8))
    }

    /// An H100 cluster: `gpus` H100-SXM, 900 GB/s NVLink, 400 Gbps NICs
    /// (what-if studies beyond the paper's A100 testbed — the §6
    /// heterogeneity hook: `simu` and `auto_parallel` only read
    /// [`GpuSpec`], so alternate hardware needs no algorithm changes).
    pub fn h100_with_gpus(gpus: usize) -> Self {
        ClusterSpec {
            gpu: GpuSpec::h100(),
            machine: MachineSpec { gpus: 8, intra_bandwidth: 900e9, inter_bandwidth: 400e9 / 8.0 },
            machines: gpus.div_ceil(8),
        }
    }

    /// Total number of GPUs.
    pub fn total_gpus(&self) -> usize {
        self.machines * self.machine.gpus
    }

    /// The machine index hosting a device.
    ///
    /// # Panics
    ///
    /// Panics if `dev` is out of range for this cluster.
    pub fn machine_of(&self, dev: DeviceId) -> usize {
        assert!(
            dev.0 < self.total_gpus(),
            "device {} out of range (cluster has {} GPUs)",
            dev.0,
            self.total_gpus()
        );
        dev.0 / self.machine.gpus
    }

    /// Whether all devices in `devs` are on a single machine.
    pub fn same_machine(&self, devs: &[DeviceId]) -> bool {
        match devs.first() {
            None => true,
            Some(first) => {
                let m = self.machine_of(*first);
                devs.iter().all(|d| self.machine_of(*d) == m)
            }
        }
    }

    /// Number of distinct machines spanned by `devs`.
    pub fn machines_spanned(&self, devs: &[DeviceId]) -> usize {
        let mut seen: Vec<usize> = devs.iter().map(|d| self.machine_of(*d)).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// A virtualized, ordered set of GPU devices (paper §4.1).
///
/// Applying the same `ResourcePool` to multiple model classes colocates
/// them (time-shared, sequential execution); disjoint pools place models
/// on different devices, enabling parallel execution. Pools must not
/// overlap (asserted by [`ResourcePool::disjoint`] where the caller
/// composes placements).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourcePool {
    devices: Vec<DeviceId>,
}

impl ResourcePool {
    /// Creates a pool over an explicit device list.
    ///
    /// # Panics
    ///
    /// Panics if `devices` contains duplicates.
    pub fn new(devices: Vec<DeviceId>) -> Self {
        let mut sorted = devices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), devices.len(), "ResourcePool devices must be unique");
        ResourcePool { devices }
    }

    /// A pool over the contiguous device range `[start, start + n)`.
    pub fn contiguous(start: usize, n: usize) -> Self {
        ResourcePool { devices: (start..start + n).map(DeviceId).collect() }
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The ordered device list; local rank `i` runs on `devices()[i]`.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// The device hosting local rank `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    pub fn device(&self, rank: usize) -> DeviceId {
        self.devices[rank]
    }

    /// Whether two pools share no device.
    pub fn disjoint(&self, other: &ResourcePool) -> bool {
        self.devices.iter().all(|d| !other.devices.contains(d))
    }

    /// Whether two pools are over exactly the same device set.
    pub fn same_devices(&self, other: &ResourcePool) -> bool {
        let mut a = self.devices.clone();
        let mut b = other.devices.clone();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_cluster_has_expected_size() {
        let c = ClusterSpec::a100_cluster(16);
        assert_eq!(c.total_gpus(), 128);
        assert_eq!(c.machine_of(DeviceId(0)), 0);
        assert_eq!(c.machine_of(DeviceId(7)), 0);
        assert_eq!(c.machine_of(DeviceId(8)), 1);
        assert_eq!(c.machine_of(DeviceId(127)), 15);
    }

    #[test]
    fn a100_with_gpus_rounds_up() {
        assert_eq!(ClusterSpec::a100_with_gpus(8).machines, 1);
        assert_eq!(ClusterSpec::a100_with_gpus(9).machines, 2);
        assert_eq!(ClusterSpec::a100_with_gpus(128).machines, 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn machine_of_out_of_range_panics() {
        let c = ClusterSpec::a100_cluster(1);
        c.machine_of(DeviceId(8));
    }

    #[test]
    fn same_machine_detection() {
        let c = ClusterSpec::a100_cluster(2);
        assert!(c.same_machine(&[DeviceId(0), DeviceId(7)]));
        assert!(!c.same_machine(&[DeviceId(0), DeviceId(8)]));
        assert!(c.same_machine(&[]));
        assert_eq!(c.machines_spanned(&[DeviceId(0), DeviceId(8), DeviceId(9)]), 2);
    }

    #[test]
    fn resource_pool_basics() {
        let p = ResourcePool::contiguous(4, 4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.device(0), DeviceId(4));
        assert_eq!(p.device(3), DeviceId(7));
        let q = ResourcePool::contiguous(0, 4);
        assert!(p.disjoint(&q));
        assert!(!p.disjoint(&p.clone()));
        assert!(p.same_devices(&ResourcePool::new(vec![
            DeviceId(7),
            DeviceId(6),
            DeviceId(5),
            DeviceId(4)
        ])));
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn resource_pool_rejects_duplicates() {
        ResourcePool::new(vec![DeviceId(1), DeviceId(1)]);
    }
}
