//! Analytical collective-communication cost models.
//!
//! The paper computes transition overheads (Table 2) "following [13]"
//! (Chan et al., *Collective communication: theory, practice, and
//! experience*). We use the same α–β model: a ring collective over `n`
//! ranks with payload `B` bytes takes `(n-1) · (α + B / (n · bw))` per
//! phase, where `bw` is the bandwidth of the slowest link in the ring.
//!
//! Link bandwidth is topology-aware: groups confined to one machine ride
//! NVLink; groups spanning machines are bottlenecked by the per-GPU share
//! of the machine NIC.

use serde::{Deserialize, Serialize};

use crate::topology::{ClusterSpec, DeviceId};

/// The collective operations the virtual NCCL and analytic model support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// Every rank ends with the concatenation of all ranks' shards.
    AllGather,
    /// Every rank ends with the elementwise reduction of all inputs.
    AllReduce,
    /// Every rank ends with a distinct shard of the reduction.
    ReduceScatter,
    /// The root's buffer is replicated to all ranks.
    Broadcast,
    /// All inputs are concatenated at the root.
    Gather,
    /// The root's buffer is partitioned across ranks.
    Scatter,
    /// Every rank sends a distinct shard to every other rank.
    AllToAll,
}

/// α–β cost model for collectives over a concrete device group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommCostModel {
    /// Per-phase fixed latency in seconds (kernel launch + link latency).
    pub alpha: f64,
    /// Fraction of nominal link bandwidth achievable (protocol efficiency).
    pub bandwidth_efficiency: f64,
}

impl Default for CommCostModel {
    fn default() -> Self {
        // ~8 µs per ring phase and ~70% of peak link bandwidth are typical
        // of NCCL on A100 systems.
        CommCostModel { alpha: 8e-6, bandwidth_efficiency: 0.7 }
    }
}

impl CommCostModel {
    /// Effective per-rank link bandwidth (bytes/s) for a group of devices.
    ///
    /// Within one machine this is the NVLink bandwidth. Across machines the
    /// ring must cross the NIC, and all group members on the same machine
    /// share it, so the per-rank bandwidth is `nic / ranks_per_machine`.
    pub fn link_bandwidth(&self, cluster: &ClusterSpec, devices: &[DeviceId]) -> f64 {
        let nominal = if cluster.same_machine(devices) {
            cluster.machine.intra_bandwidth
        } else {
            let machines = cluster.machines_spanned(devices).max(1);
            let per_machine = devices.len().div_ceil(machines).max(1);
            cluster.machine.inter_bandwidth * cluster.machine.gpus as f64 / per_machine as f64
        };
        nominal * self.bandwidth_efficiency
    }

    /// Time (seconds) for one collective of `total_bytes` over `devices`.
    ///
    /// `total_bytes` is the *full* payload: for all-gather / broadcast /
    /// gather / scatter it is the aggregated buffer size; for all-reduce /
    /// reduce-scatter it is the per-rank input size (all ranks hold a
    /// buffer of this size).
    pub fn collective_time(
        &self,
        cluster: &ClusterSpec,
        devices: &[DeviceId],
        kind: CollectiveKind,
        total_bytes: f64,
    ) -> f64 {
        let n = devices.len();
        if n <= 1 {
            return 0.0;
        }
        let bw = self.link_bandwidth(cluster, devices);
        let nf = n as f64;
        let phase = |bytes_per_phase: f64| self.alpha + bytes_per_phase / bw;
        match kind {
            // Ring all-gather: n-1 phases, each moving B/n bytes.
            CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
                (nf - 1.0) * phase(total_bytes / nf)
            }
            // Ring all-reduce = reduce-scatter + all-gather.
            CollectiveKind::AllReduce => 2.0 * (nf - 1.0) * phase(total_bytes / nf),
            // Pipelined ring broadcast ≈ all-gather of the same volume.
            CollectiveKind::Broadcast => (nf - 1.0) * phase(total_bytes / nf),
            // Gather/scatter serialize through the root link.
            CollectiveKind::Gather | CollectiveKind::Scatter => {
                (nf - 1.0) * self.alpha + total_bytes * (nf - 1.0) / nf / bw
            }
            // Pairwise-exchange all-to-all: n-1 phases of B/n bytes.
            CollectiveKind::AllToAll => (nf - 1.0) * phase(total_bytes / nf),
        }
    }

    /// Point-to-point transfer time for `bytes` between two devices.
    pub fn p2p_time(&self, cluster: &ClusterSpec, src: DeviceId, dst: DeviceId, bytes: f64) -> f64 {
        if src == dst {
            return 0.0;
        }
        let bw = self.link_bandwidth(cluster, &[src, dst]);
        self.alpha + bytes / bw
    }

    /// Control-message dispatch latency from the single controller to a
    /// worker (RPC over the host network; paper §2.2/§2.5 argues this is
    /// negligible relative to model computation, which our evaluation
    /// re-verifies via an ablation bench).
    pub fn rpc_dispatch_time(&self) -> f64 {
        // Sub-millisecond Ray-like RPC dispatch.
        200e-6
    }
}

/// Closed-form communication volume (bytes moved per rank) for a ring
/// all-gather aggregating `total_bytes` over `n` ranks: `(n-1)/n · B`.
///
/// This is the quantity the paper's Table 2 reports as "Comm. Vol".
pub fn ring_all_gather_volume(total_bytes: f64, n: usize) -> f64 {
    if n <= 1 {
        0.0
    } else {
        total_bytes * (n as f64 - 1.0) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterSpec {
        ClusterSpec::a100_cluster(2)
    }

    #[test]
    fn intra_machine_uses_nvlink() {
        let m = CommCostModel::default();
        let c = cluster();
        let devs: Vec<DeviceId> = (0..8).map(DeviceId).collect();
        let bw = m.link_bandwidth(&c, &devs);
        assert!((bw - 600e9 * 0.7).abs() < 1.0);
    }

    #[test]
    fn inter_machine_is_bottlenecked_by_nic_share() {
        let m = CommCostModel::default();
        let c = cluster();
        let devs: Vec<DeviceId> = (0..16).map(DeviceId).collect();
        // 8 ranks per machine share a 200 Gbps NIC: 25e9/8*8 = 25e9... the
        // per-machine NIC is 200e9/8 per GPU nominal; with 8 ranks on each
        // machine the share is (200e9/8)*8/8 = 25e9 B/s before efficiency.
        let bw = m.link_bandwidth(&c, &devs);
        assert!((bw - 25e9 * 0.7).abs() < 1.0, "bw = {bw}");
    }

    #[test]
    fn all_gather_time_scales_with_volume() {
        let m = CommCostModel::default();
        let c = cluster();
        let devs: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let t1 = m.collective_time(&c, &devs, CollectiveKind::AllGather, 1e9);
        let t2 = m.collective_time(&c, &devs, CollectiveKind::AllGather, 2e9);
        assert!(t2 > t1);
        assert!(t2 < 2.0 * t1 + 1e-3);
    }

    #[test]
    fn all_reduce_is_twice_reduce_scatter() {
        let m = CommCostModel::default();
        let c = cluster();
        let devs: Vec<DeviceId> = (0..8).map(DeviceId).collect();
        let rs = m.collective_time(&c, &devs, CollectiveKind::ReduceScatter, 1e9);
        let ar = m.collective_time(&c, &devs, CollectiveKind::AllReduce, 1e9);
        assert!((ar - 2.0 * rs).abs() < 1e-9);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = CommCostModel::default();
        let c = cluster();
        let t = m.collective_time(&c, &[DeviceId(0)], CollectiveKind::AllReduce, 1e9);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn p2p_same_device_free_and_cross_machine_slower() {
        let m = CommCostModel::default();
        let c = cluster();
        assert_eq!(m.p2p_time(&c, DeviceId(0), DeviceId(0), 1e9), 0.0);
        let intra = m.p2p_time(&c, DeviceId(0), DeviceId(1), 1e9);
        let inter = m.p2p_time(&c, DeviceId(0), DeviceId(8), 1e9);
        assert!(inter > intra);
    }

    #[test]
    fn ring_volume_formula() {
        assert_eq!(ring_all_gather_volume(8.0, 1), 0.0);
        assert!((ring_all_gather_volume(8.0, 4) - 6.0).abs() < 1e-12);
    }
}
