//! Simulated GPU cluster substrate for the HybridFlow reproduction.
//!
//! The paper evaluates HybridFlow on 16 machines with 8 NVIDIA A100-80GB
//! GPUs each, connected by 600 GB/s NVLink inside a machine and 200 Gbps
//! Ethernet between machines. This crate replaces that testbed with:
//!
//! * [`topology`] — device/machine/cluster descriptions and the
//!   [`topology::ResourcePool`] abstraction the hybrid programming model
//!   maps models onto (paper §4.1).
//! * [`cost`] — analytical cost models for collective communication
//!   (ring all-gather / all-reduce / reduce-scatter, broadcast,
//!   point-to-point), following Chan et al. as the paper does for its
//!   transition-overhead accounting (Table 2).
//! * [`comm`] — a "virtual NCCL": real rendezvous collectives between
//!   worker threads with per-rank *virtual clocks*, so functional
//!   execution produces the same timing the analytic simulators predict.
//! * [`clock`] — the virtual time primitive.

#![warn(missing_docs)]

pub mod clock;
pub mod comm;
pub mod cost;
pub mod topology;

pub use clock::VirtualClock;
pub use comm::{tree_sum_parts, CollectiveAbort, CommGroup, Communicator, P2pNetwork};
pub use cost::{CollectiveKind, CommCostModel};
pub use topology::{ClusterSpec, DeviceId, GpuSpec, MachineSpec, ResourcePool};
