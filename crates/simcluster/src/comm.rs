//! Virtual NCCL: rendezvous collectives between worker threads.
//!
//! Each parallel group (TP / PP / DP / micro-DP) in the multi-controller
//! runtime is backed by a [`CommGroup`]: a shared-memory rendezvous that
//! every member thread enters with its contribution and leaves with the
//! full set of contributions. On top of it, [`Communicator`] implements
//! the typed collectives (all-gather, all-reduce, reduce-scatter,
//! broadcast, gather, scatter, barrier) and charges each rank's
//! [`VirtualClock`] the analytic cost from [`CommCostModel`], so the
//! functional runtime and the analytic simulators agree on timing.
//!
//! Point-to-point transfers (used by inter-node data resharding, paper
//! §4.1 step ⑥) go through [`P2pNetwork`], which models GPU-to-GPU pulls
//! without a central bottleneck.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use crate::clock::VirtualClock;
use crate::cost::{CollectiveKind, CommCostModel};
use crate::topology::{ClusterSpec, DeviceId};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Filling,
    Draining,
}

struct RoundState {
    phase: Phase,
    arrived: usize,
    departed: usize,
    slots: Vec<Option<Box<dyn Any + Send>>>,
    result: Option<Arc<dyn Any + Send + Sync>>,
    /// Once set, every present and future `exchange` on the group aborts
    /// by unwinding with a [`CollectiveAbort`] payload instead of
    /// blocking on members that will never arrive.
    poisoned: Option<Arc<str>>,
    /// Lifecycle auditor (audit builds): which ranks are currently inside
    /// `exchange`. A rank re-entering before its previous collective
    /// finished would corrupt the rendezvous round — the same misuse that
    /// hangs or corrupts a real NCCL communicator.
    #[cfg(feature = "audit")]
    in_flight: Vec<bool>,
}

/// Panic payload thrown out of [`CommGroup::exchange`] when the group
/// has been poisoned (a member died or was killed by fault injection).
///
/// This is the simulated analogue of `ncclCommAbort`: surviving ranks
/// blocked in a rendezvous are woken and unwind with this payload, which
/// the runtime layer catches and converts into a peer-failure error
/// rather than letting the collective deadlock.
#[derive(Debug, Clone)]
pub struct CollectiveAbort {
    /// Human-readable description of the originating failure.
    pub reason: String,
}

struct GroupInner {
    devices: Vec<DeviceId>,
    state: Mutex<RoundState>,
    cv: Condvar,
}

/// A rendezvous communication group over a fixed, ordered set of devices.
///
/// Cloning the handle shares the group; every member must call each
/// collective exactly once per round, in the same order, or the group
/// deadlocks (the same contract NCCL imposes).
#[derive(Clone)]
pub struct CommGroup {
    inner: Arc<GroupInner>,
}

impl CommGroup {
    /// Creates a group over `devices`; member local ranks are positions in
    /// this list.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is empty.
    pub fn new(devices: Vec<DeviceId>) -> Self {
        assert!(!devices.is_empty(), "CommGroup must have at least one member");
        let n = devices.len();
        CommGroup {
            inner: Arc::new(GroupInner {
                devices,
                state: Mutex::new(RoundState {
                    phase: Phase::Filling,
                    arrived: 0,
                    departed: 0,
                    slots: (0..n).map(|_| None).collect(),
                    result: None,
                    poisoned: None,
                    #[cfg(feature = "audit")]
                    in_flight: vec![false; n],
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.inner.devices.len()
    }

    /// Ordered member device list.
    pub fn devices(&self) -> &[DeviceId] {
        &self.inner.devices
    }

    /// Poisons the group: every member currently blocked in
    /// [`CommGroup::exchange`] is woken and unwinds with a
    /// [`CollectiveAbort`]; every later `exchange` aborts immediately.
    ///
    /// Poisoning is permanent and idempotent (the first reason wins) —
    /// recovery means spawning a fresh worker group with fresh groups,
    /// exactly as NCCL requires a new communicator after `commAbort`.
    pub fn poison(&self, reason: &str) {
        let mut st = self.inner.state.lock();
        if st.poisoned.is_none() {
            st.poisoned = Some(Arc::from(reason));
        }
        self.inner.cv.notify_all();
    }

    /// The poison reason, if the group has been poisoned.
    pub fn poisoned(&self) -> Option<String> {
        self.inner.state.lock().poisoned.as_ref().map(|r| r.to_string())
    }

    /// Deposits `value` for `rank` and returns all members' values in rank
    /// order once every member has arrived.
    ///
    /// This is the primitive every collective is built from. The returned
    /// `Arc` is shared by all members; values are cloned out lazily by the
    /// typed wrappers.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range or deposits twice in one round.
    pub fn exchange<T: Clone + Send + Sync + 'static>(&self, rank: usize, value: T) -> Arc<Vec<T>> {
        fn abort_if_poisoned(st: &RoundState) {
            if let Some(r) = &st.poisoned {
                std::panic::panic_any(CollectiveAbort { reason: r.to_string() });
            }
        }
        let inner = &*self.inner;
        let n = inner.devices.len();
        assert!(rank < n, "rank {rank} out of range for group of {n}");
        let mut st = inner.state.lock();
        abort_if_poisoned(&st);
        #[cfg(feature = "audit")]
        {
            assert!(
                !st.in_flight[rank],
                "audit: rank {rank} issued overlapping collectives on one group \
                 (previous exchange has not completed)"
            );
            st.in_flight[rank] = true;
        }
        // Wait out the drain of the previous round.
        while st.phase == Phase::Draining {
            inner.cv.wait(&mut st);
            abort_if_poisoned(&st);
        }
        assert!(st.slots[rank].is_none(), "rank {rank} deposited twice in one round");
        st.slots[rank] = Some(Box::new(value));
        st.arrived += 1;
        if st.arrived == n {
            let vals: Vec<T> = st
                .slots
                .iter_mut()
                .map(|s| {
                    *s.take()
                        .expect("slot must be filled")
                        .downcast::<T>()
                        .expect("all members of a round must exchange the same type")
                })
                .collect();
            st.result = Some(Arc::new(vals));
            st.phase = Phase::Draining;
            inner.cv.notify_all();
        } else {
            while st.phase == Phase::Filling {
                inner.cv.wait(&mut st);
                abort_if_poisoned(&st);
            }
        }
        let arc: Arc<dyn Any + Send + Sync> =
            st.result.as_ref().expect("result must be set in draining phase").clone();
        #[cfg(feature = "audit")]
        {
            st.in_flight[rank] = false;
        }
        st.departed += 1;
        if st.departed == n {
            st.phase = Phase::Filling;
            st.arrived = 0;
            st.departed = 0;
            st.result = None;
            inner.cv.notify_all();
        }
        drop(st);
        arc.downcast::<Vec<T>>().expect("all members of a round must exchange the same type")
    }
}

/// A per-rank handle over a [`CommGroup`] with timing semantics.
pub struct Communicator {
    group: CommGroup,
    rank: usize,
    cluster: Arc<ClusterSpec>,
    cost: CommCostModel,
    /// Collective rounds completed through *this handle*. SPMD members
    /// of a group call collectives in lockstep, so every member's local
    /// count agrees after each round — `(collective_tag, round)` is a
    /// deterministic cross-rank name for one collective instance, which
    /// hf-insight uses to stitch membership edges into the span graph.
    rounds: std::sync::atomic::AtomicU64,
    /// Lifecycle auditor (audit builds): set once this handle observes a
    /// [`CollectiveAbort`]. NCCL requires a fresh communicator after
    /// `commAbort`; issuing another collective through an aborted handle
    /// is a use-after-abort bug, not a recoverable condition.
    #[cfg(feature = "audit")]
    aborted: std::sync::atomic::AtomicBool,
}

impl Communicator {
    /// Binds local `rank` of `group` on `cluster` with cost model `cost`.
    pub fn new(
        group: CommGroup,
        rank: usize,
        cluster: Arc<ClusterSpec>,
        cost: CommCostModel,
    ) -> Self {
        assert!(rank < group.size());
        Communicator {
            group,
            rank,
            cluster,
            cost,
            rounds: std::sync::atomic::AtomicU64::new(0),
            #[cfg(feature = "audit")]
            aborted: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Collective rounds completed through this handle so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Deterministic cross-rank name for this communicator: the ordered
    /// device list of the group. Combined with [`Communicator::rounds`]
    /// it names one collective instance (`tag@round`) identically on
    /// every member — the basis for collective-membership edges in the
    /// causal span graph.
    pub fn collective_tag(&self) -> String {
        let ids: Vec<String> = self.group.devices().iter().map(|d| d.0.to_string()).collect();
        ids.join("-")
    }

    /// This rank's position in the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of group members.
    pub fn size(&self) -> usize {
        self.group.size()
    }

    /// The underlying group.
    pub fn group(&self) -> &CommGroup {
        &self.group
    }

    fn charge(&self, clock: &mut VirtualClock, times: &[f64], kind: CollectiveKind, bytes: f64) {
        let start = times.iter().cloned().fold(0.0_f64, f64::max);
        let cost = self.cost.collective_time(&self.cluster, self.group.devices(), kind, bytes);
        clock.sync_to(start + cost);
    }

    /// Raw exchange of arbitrary values plus clock synchronization with an
    /// explicit collective kind and payload size (used by higher layers
    /// that move non-f32 payloads, e.g. `DataProto` batches).
    pub fn exchange_timed<T: Clone + Send + Sync + 'static>(
        &self,
        clock: &mut VirtualClock,
        value: T,
        kind: CollectiveKind,
        total_bytes: f64,
    ) -> Arc<Vec<T>> {
        #[cfg(feature = "audit")]
        let all = {
            use std::sync::atomic::Ordering;
            assert!(
                !self.aborted.load(Ordering::Relaxed),
                "audit: rank {} issued a collective on a communicator that already \
                 observed a CollectiveAbort (a fresh communicator is required)",
                self.rank
            );
            let now = clock.now();
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.group.exchange(self.rank, (now, value))
            })) {
                Ok(all) => all,
                Err(payload) => {
                    self.aborted.store(true, Ordering::Relaxed);
                    std::panic::resume_unwind(payload);
                }
            }
        };
        #[cfg(not(feature = "audit"))]
        let all = self.group.exchange(self.rank, (clock.now(), value));
        let times: Vec<f64> = all.iter().map(|(t, _)| *t).collect();
        self.charge(clock, &times, kind, total_bytes);
        self.rounds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let vals: Vec<T> = all.iter().map(|(_, v)| v.clone()).collect();
        Arc::new(vals)
    }

    /// Ring all-gather: returns the concatenation of all ranks' buffers in
    /// rank order.
    pub fn all_gather(&self, clock: &mut VirtualClock, data: &[f32]) -> Vec<f32> {
        let parts = self.exchange_timed(
            clock,
            data.to_vec(),
            CollectiveKind::AllGather,
            0.0, // placeholder, recomputed below
        );
        // Recharge with the true aggregated size (cheap: charge() above used
        // zero bytes; add the true cost delta here by charging again with the
        // aggregate minus zero). To keep charging exact we compute the full
        // aggregate and charge once: redo via direct sum.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let cost_full = self.cost.collective_time(
            &self.cluster,
            self.group.devices(),
            CollectiveKind::AllGather,
            (total * 4) as f64,
        );
        clock.advance(cost_full);
        let mut out = Vec::with_capacity(total);
        for p in parts.iter() {
            out.extend_from_slice(p);
        }
        out
    }

    /// Ring all-reduce (sum). All buffers must be the same length.
    ///
    /// Rank contributions combine in a balanced pairwise tree (not a
    /// left fold), so for power-of-two group sizes the float association
    /// is the same at every size — the keystone of the cross-layout
    /// bit-parity contract `hf-audit` enforces: summing 8 per-row
    /// gradients on one rank gives the exact bytes of tree-summing 4+4
    /// on two ranks and all-reducing, as long as each rank also
    /// tree-sums its local rows.
    ///
    /// # Panics
    ///
    /// Panics if member buffer lengths differ.
    pub fn all_reduce_sum(&self, clock: &mut VirtualClock, data: &[f32]) -> Vec<f32> {
        let parts = self.exchange_timed(
            clock,
            data.to_vec(),
            CollectiveKind::AllReduce,
            (data.len() * 4) as f64,
        );
        let len = parts[0].len();
        for p in parts.iter() {
            assert_eq!(p.len(), len, "all_reduce buffers must have equal length");
        }
        tree_sum_parts(parts.as_slice().to_vec())
    }

    /// Ring reduce-scatter (sum): rank `i` receives the `i`-th equal chunk
    /// of the elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length is not divisible by the group size.
    pub fn reduce_scatter_sum(&self, clock: &mut VirtualClock, data: &[f32]) -> Vec<f32> {
        let n = self.size();
        assert_eq!(data.len() % n, 0, "reduce_scatter length must divide evenly");
        let summed = {
            let parts = self.exchange_timed(
                clock,
                data.to_vec(),
                CollectiveKind::ReduceScatter,
                (data.len() * 4) as f64,
            );
            let len = parts[0].len();
            for p in parts.iter() {
                assert_eq!(p.len(), len);
            }
            // Balanced pairwise tree, matching all_reduce_sum (see there)
            // so ZeRO sharded updates reproduce replicated ones bitwise.
            tree_sum_parts(parts.as_slice().to_vec())
        };
        let chunk = summed.len() / n;
        summed[self.rank * chunk..(self.rank + 1) * chunk].to_vec()
    }

    /// Broadcast from `root`; only the root's `data` is used.
    ///
    /// # Panics
    ///
    /// Panics if the root passed `None`.
    pub fn broadcast(
        &self,
        clock: &mut VirtualClock,
        root: usize,
        data: Option<Vec<f32>>,
    ) -> Vec<f32> {
        let parts = self.exchange_timed(clock, data, CollectiveKind::Broadcast, 0.0);
        let payload = parts[root].as_ref().expect("broadcast root must supply data").clone();
        let cost = self.cost.collective_time(
            &self.cluster,
            self.group.devices(),
            CollectiveKind::Broadcast,
            (payload.len() * 4) as f64,
        );
        clock.advance(cost);
        payload
    }

    /// Gather to `root`: the root receives every rank's buffer; other ranks
    /// receive `None`.
    pub fn gather(
        &self,
        clock: &mut VirtualClock,
        root: usize,
        data: &[f32],
    ) -> Option<Vec<Vec<f32>>> {
        let parts = self.exchange_timed(
            clock,
            data.to_vec(),
            CollectiveKind::Gather,
            (data.len() * 4 * self.size()) as f64,
        );
        if self.rank == root {
            Some(parts.iter().cloned().collect())
        } else {
            None
        }
    }

    /// Scatter from `root`: the root supplies one chunk per rank.
    ///
    /// # Panics
    ///
    /// Panics if the root passed `None` or the wrong number of chunks.
    pub fn scatter(
        &self,
        clock: &mut VirtualClock,
        root: usize,
        chunks: Option<Vec<Vec<f32>>>,
    ) -> Vec<f32> {
        let parts = self.exchange_timed(clock, chunks, CollectiveKind::Scatter, 0.0);
        let all = parts[root].as_ref().expect("scatter root must supply chunks");
        assert_eq!(all.len(), self.size(), "scatter needs one chunk per rank");
        let total: usize = all.iter().map(|c| c.len() * 4).sum();
        let cost = self.cost.collective_time(
            &self.cluster,
            self.group.devices(),
            CollectiveKind::Scatter,
            total as f64,
        );
        clock.advance(cost);
        all[self.rank].clone()
    }

    /// Barrier: synchronizes virtual clocks to the group maximum.
    pub fn barrier(&self, clock: &mut VirtualClock) {
        let _ = self.exchange_timed(clock, (), CollectiveKind::AllGather, 0.0);
    }
}

/// Balanced pairwise-tree elementwise sum of equal-length vectors; an
/// odd tail carries up a level unchanged.
///
/// This is the association `all_reduce_sum` / `reduce_scatter_sum` use
/// to combine rank contributions, exported so workers can sum per-row
/// gradients the same way: for a power-of-two global row count split
/// into equal power-of-two chunks, local-tree + rank-tree composes into
/// the single-rank global tree, which is what makes DP gradient
/// reductions bit-identical across layouts (the hf-audit contract).
///
/// # Panics
///
/// Panics if `parts` is empty.
pub fn tree_sum_parts(mut parts: Vec<Vec<f32>>) -> Vec<f32> {
    assert!(!parts.is_empty(), "tree_sum_parts of no parts");
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x += y;
                }
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop().expect("one part remains")
}

type P2pMsg = (f64, Box<dyn Any + Send>);
type P2pLinks = HashMap<(DeviceId, DeviceId), (Sender<P2pMsg>, Receiver<P2pMsg>)>;

/// Mesh of point-to-point channels between devices, created on demand.
///
/// Models the direct GPU-to-GPU pulls of the transfer protocols: "the
/// actual data transfer only occurs between GPUs, avoiding any central
/// bottleneck" (paper §4.1).
#[derive(Clone)]
pub struct P2pNetwork {
    cluster: Arc<ClusterSpec>,
    cost: CommCostModel,
    links: Arc<Mutex<P2pLinks>>,
}

impl P2pNetwork {
    /// Creates an empty mesh over `cluster`.
    pub fn new(cluster: Arc<ClusterSpec>, cost: CommCostModel) -> Self {
        P2pNetwork { cluster, cost, links: Arc::new(Mutex::new(HashMap::new())) }
    }

    fn link(&self, src: DeviceId, dst: DeviceId) -> (Sender<P2pMsg>, Receiver<P2pMsg>) {
        let mut links = self.links.lock();
        links.entry((src, dst)).or_insert_with(unbounded).clone()
    }

    /// Sends `value` (`bytes` on the wire) from `src` to `dst`; the message
    /// arrives at `send_time + p2p_cost`.
    pub fn send<T: Send + 'static>(
        &self,
        clock: &VirtualClock,
        src: DeviceId,
        dst: DeviceId,
        value: T,
        bytes: f64,
    ) {
        let arrival = clock.now() + self.cost.p2p_time(&self.cluster, src, dst, bytes);
        let (tx, _) = self.link(src, dst);
        tx.send((arrival, Box::new(value))).expect("p2p channel closed");
    }

    /// Receives the next message on the `src → dst` link, advancing the
    /// receiver's clock to the arrival time.
    ///
    /// # Panics
    ///
    /// Panics if the message type does not match `T`.
    pub fn recv<T: Send + 'static>(
        &self,
        clock: &mut VirtualClock,
        src: DeviceId,
        dst: DeviceId,
    ) -> T {
        let (_, rx) = self.link(src, dst);
        let (arrival, boxed) = rx.recv().expect("p2p channel closed");
        clock.sync_to(arrival);
        *boxed.downcast::<T>().expect("p2p message type mismatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn harness(n: usize) -> (CommGroup, Arc<ClusterSpec>, CommCostModel) {
        let group = CommGroup::new((0..n).map(DeviceId).collect());
        let cluster = Arc::new(ClusterSpec::a100_cluster(n.div_ceil(8)));
        (group, cluster, CommCostModel::default())
    }

    fn run_ranks<F, R>(n: usize, f: F) -> Vec<R>
    where
        F: Fn(usize, Communicator) -> R + Send + Sync + 'static,
        R: Send + 'static,
    {
        let (group, cluster, cost) = harness(n);
        let f = Arc::new(f);
        let handles: Vec<_> = (0..n)
            .map(|r| {
                let comm = Communicator::new(group.clone(), r, cluster.clone(), cost.clone());
                let f = f.clone();
                thread::spawn(move || f(r, comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        let outs = run_ranks(4, |r, comm| {
            let mut clock = VirtualClock::new();
            comm.all_gather(&mut clock, &[r as f32, r as f32 + 0.5])
        });
        for out in outs {
            assert_eq!(out, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]);
        }
    }

    #[test]
    fn all_reduce_sums_elementwise() {
        let outs = run_ranks(4, |r, comm| {
            let mut clock = VirtualClock::new();
            comm.all_reduce_sum(&mut clock, &[r as f32, 1.0])
        });
        for out in outs {
            assert_eq!(out, vec![6.0, 4.0]);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_chunk() {
        let outs = run_ranks(2, |_, comm| {
            let mut clock = VirtualClock::new();
            comm.reduce_scatter_sum(&mut clock, &[1.0, 2.0, 3.0, 4.0])
        });
        assert_eq!(outs[0], vec![2.0, 4.0]);
        assert_eq!(outs[1], vec![6.0, 8.0]);
    }

    #[test]
    fn broadcast_replicates_root_buffer() {
        let outs = run_ranks(3, |r, comm| {
            let mut clock = VirtualClock::new();
            let data = if r == 1 { Some(vec![7.0, 8.0]) } else { None };
            comm.broadcast(&mut clock, 1, data)
        });
        for out in outs {
            assert_eq!(out, vec![7.0, 8.0]);
        }
    }

    #[test]
    fn gather_and_scatter_round_trip() {
        let outs = run_ranks(3, |r, comm| {
            let mut clock = VirtualClock::new();
            let gathered = comm.gather(&mut clock, 0, &[r as f32]);
            let chunks = gathered.map(|g| {
                g.into_iter()
                    .map(|mut c| {
                        c[0] *= 10.0;
                        c
                    })
                    .collect::<Vec<_>>()
            });
            comm.scatter(&mut clock, 0, chunks)
        });
        assert_eq!(outs[0], vec![0.0]);
        assert_eq!(outs[1], vec![10.0]);
        assert_eq!(outs[2], vec![20.0]);
    }

    #[test]
    fn clocks_synchronize_to_slowest_rank() {
        let outs = run_ranks(4, |r, comm| {
            let mut clock = VirtualClock::new();
            clock.advance(r as f64); // rank 3 is slowest at t=3
            comm.barrier(&mut clock);
            clock.now()
        });
        for t in outs {
            assert!(t >= 3.0, "clock {t} must reach the slowest rank");
        }
    }

    #[test]
    fn group_supports_repeated_rounds() {
        let outs = run_ranks(3, |r, comm| {
            let mut clock = VirtualClock::new();
            let mut acc = 0.0;
            for round in 0..50 {
                let s = comm.all_reduce_sum(&mut clock, &[(r + round) as f32]);
                acc += s[0];
            }
            acc
        });
        // Each round sums to 3*round + 3; total = sum_{0..50} (3 round + 3).
        let expect: f32 = (0..50).map(|x| 3.0 * x as f32 + 3.0).sum();
        for o in outs {
            assert!((o - expect).abs() < 1e-3);
        }
    }

    #[test]
    fn poison_unblocks_waiters_with_collective_abort() {
        // One member enters the rendezvous and blocks (its peer never
        // arrives); poisoning the group must wake it with a
        // CollectiveAbort payload instead of leaving it blocked forever.
        let group = CommGroup::new(vec![DeviceId(0), DeviceId(1)]);
        let waiter_group = group.clone();
        let waiter = thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                waiter_group.exchange(0, 1.0f32);
            }))
        });
        // Give the waiter time to block in the filling phase.
        thread::sleep(std::time::Duration::from_millis(30));
        group.poison("rank 1 died");
        let res = waiter.join().unwrap();
        let payload = res.expect_err("waiter must unwind");
        let abort = payload.downcast_ref::<CollectiveAbort>().expect("CollectiveAbort payload");
        assert!(abort.reason.contains("rank 1 died"));
        assert_eq!(group.poisoned().as_deref(), Some("rank 1 died"));
    }

    #[test]
    fn poisoned_group_aborts_future_exchanges_immediately() {
        let group = CommGroup::new(vec![DeviceId(0), DeviceId(1)]);
        group.poison("injected kill");
        group.poison("second reason is ignored");
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            group.exchange(1, 7u32);
        }));
        let payload = res.expect_err("exchange on a poisoned group must abort");
        let abort = payload.downcast_ref::<CollectiveAbort>().expect("CollectiveAbort payload");
        assert_eq!(abort.reason, "injected kill");
    }

    #[test]
    fn p2p_transfers_value_and_time() {
        let cluster = Arc::new(ClusterSpec::a100_cluster(2));
        let net = P2pNetwork::new(cluster, CommCostModel::default());
        let net2 = net.clone();
        let sender = thread::spawn(move || {
            let mut clock = VirtualClock::new();
            clock.advance(1.0);
            net2.send(&clock, DeviceId(0), DeviceId(8), vec![42.0f32], 4.0e9);
        });
        let mut clock = VirtualClock::new();
        let v: Vec<f32> = net.recv(&mut clock, DeviceId(0), DeviceId(8));
        sender.join().unwrap();
        assert_eq!(v, vec![42.0]);
        // 4 GB over a cross-machine link must take noticeable virtual time.
        assert!(clock.now() > 1.0);
    }
}

#[cfg(test)]
mod p2p_tests {
    use super::*;
    use std::thread;

    #[test]
    fn p2p_messages_preserve_fifo_order_per_link() {
        let cluster = Arc::new(ClusterSpec::a100_cluster(1));
        let net = P2pNetwork::new(cluster, CommCostModel::default());
        let tx_net = net.clone();
        let sender = thread::spawn(move || {
            let mut clock = VirtualClock::new();
            for i in 0..20u32 {
                clock.advance(0.1);
                tx_net.send(&clock, DeviceId(0), DeviceId(1), i, 1024.0);
            }
        });
        let mut clock = VirtualClock::new();
        for expect in 0..20u32 {
            let got: u32 = net.recv(&mut clock, DeviceId(0), DeviceId(1));
            assert_eq!(got, expect, "FIFO order per link");
        }
        sender.join().unwrap();
        // Arrival times are monotone, so the receiver's clock advanced to
        // at least the last send time.
        assert!(clock.now() >= 2.0);
    }

    #[test]
    fn p2p_links_are_independent() {
        let cluster = Arc::new(ClusterSpec::a100_cluster(1));
        let net = P2pNetwork::new(cluster, CommCostModel::default());
        let clock = VirtualClock::new();
        net.send(&clock, DeviceId(0), DeviceId(1), "a", 8.0);
        net.send(&clock, DeviceId(1), DeviceId(0), "b", 8.0);
        let mut c1 = VirtualClock::new();
        let mut c2 = VirtualClock::new();
        let b: &str = net.recv(&mut c2, DeviceId(1), DeviceId(0));
        let a: &str = net.recv(&mut c1, DeviceId(0), DeviceId(1));
        assert_eq!((a, b), ("a", "b"));
    }
}
