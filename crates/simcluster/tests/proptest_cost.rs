//! Property tests for the collective cost model and virtual clocks.

use hf_simcluster::{ClusterSpec, CollectiveKind, CommCostModel, DeviceId, VirtualClock};
use proptest::prelude::*;

fn devices(n: usize) -> Vec<DeviceId> {
    (0..n).map(DeviceId).collect()
}

proptest! {
    #[test]
    fn collective_time_is_monotone_in_bytes(n in 2usize..32, b1 in 1u64..1_000_000,
                                            extra in 1u64..1_000_000) {
        let c = ClusterSpec::a100_with_gpus(n);
        let m = CommCostModel::default();
        let devs = devices(n);
        for kind in [CollectiveKind::AllGather, CollectiveKind::AllReduce,
                     CollectiveKind::ReduceScatter, CollectiveKind::Broadcast,
                     CollectiveKind::Gather, CollectiveKind::Scatter,
                     CollectiveKind::AllToAll] {
            let t1 = m.collective_time(&c, &devs, kind, b1 as f64);
            let t2 = m.collective_time(&c, &devs, kind, (b1 + extra) as f64);
            prop_assert!(t2 >= t1, "{kind:?}");
            prop_assert!(t1 > 0.0);
        }
    }

    #[test]
    fn cross_machine_groups_never_beat_intra(machines in 2usize..8, b in 1u64..10_000_000) {
        let c = ClusterSpec::a100_cluster(machines);
        let m = CommCostModel::default();
        let intra = m.collective_time(&c, &devices(8), CollectiveKind::AllGather, b as f64);
        // Same group size, spread across machines (one GPU per machine).
        let spread: Vec<DeviceId> = (0..8.min(machines)).map(|i| DeviceId(i * 8)).collect();
        let inter = m.collective_time(&c, &spread, CollectiveKind::AllGather, b as f64);
        if spread.len() == 8 {
            prop_assert!(inter >= intra);
        }
    }

    #[test]
    fn p2p_is_symmetric_in_cost(n in 2usize..64, b in 1u64..10_000_000) {
        let c = ClusterSpec::a100_with_gpus(n);
        let m = CommCostModel::default();
        let a = DeviceId(0);
        let z = DeviceId(n - 1);
        prop_assert_eq!(m.p2p_time(&c, a, z, b as f64), m.p2p_time(&c, z, a, b as f64));
    }

    #[test]
    fn clock_is_monotone(steps in proptest::collection::vec(0.0f64..10.0, 1..32)) {
        let mut clock = VirtualClock::new();
        let mut prev = 0.0;
        for s in steps {
            clock.advance(s);
            prop_assert!(clock.now() >= prev);
            prev = clock.now();
            clock.sync_to(prev - 1.0); // must never rewind
            prop_assert_eq!(clock.now(), prev);
        }
    }

    #[test]
    fn all_reduce_dominates_all_gather(n in 2usize..32, b in 1u64..1_000_000) {
        let c = ClusterSpec::a100_with_gpus(n);
        let m = CommCostModel::default();
        let devs = devices(n);
        let ag = m.collective_time(&c, &devs, CollectiveKind::AllGather, b as f64);
        let ar = m.collective_time(&c, &devs, CollectiveKind::AllReduce, b as f64);
        prop_assert!(ar >= ag);
    }
}
