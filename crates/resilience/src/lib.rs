//! `hf-resilience`: fault injection, failure detection, and sharded
//! checkpoint/restore for the hybrid runtime.
//!
//! The paper's artifact inherits fault tolerance from Ray's single
//! controller; this reproduction substitutes its own three-layer
//! resilience subsystem:
//!
//! * [`fault`] — deterministic fault injection: a seeded [`fault::FaultPlan`]
//!   (kill rank R at virtual time T or during method M's N-th call,
//!   drop/delay RPCs, sever or delay a link, slow a device) compiled
//!   into a [`fault::FaultInjector`] that implements
//!   [`hf_core::FaultHook`], so every failure scenario is a reproducible
//!   test case.
//! * [`detect`] — failure classification over [`hf_core::CoreError`],
//!   heartbeat probing of device threads, and recovery bookkeeping
//!   (MTTR, virtual time lost to rollback) exported through
//!   `resilience.*` telemetry.
//! * [`checkpoint`] — sharded, atomic checkpoint/restore: each rank
//!   snapshots its (p,t,d)- or ZeRO-aware parameter shard plus Adam
//!   moments and RNG round via the `save_shard` worker method; shards
//!   are written tmp+rename with an FNV-1a content-hash manifest and a
//!   final `COMMIT` marker, then reassembled and broadcast into a
//!   freshly spawned worker group on restore.
//!
//! The recoverable training outer loop that ties these together lives
//! in `hf-rlhf` (`run_recoverable`), which checkpoints every N
//! iterations, detects a failure, respawns the worker groups (fresh
//! communicators replace poisoned ones), restores the latest committed
//! checkpoint, and replays — bit-identically, because prompt streams
//! are seeded by iteration and worker state restores exactly.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod detect;
pub mod fault;

pub use checkpoint::{AssembledState, CheckpointStore, GroupSaveReport, SAVE_SHARD_METHOD};
pub use detect::{classify, probe_cluster, ClusterHealth, FailureKind, RecoveryStats};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec, FaultTrigger};
