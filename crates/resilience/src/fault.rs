//! Deterministic fault plans and their injector.
//!
//! A [`FaultPlan`] is data: a list of [`FaultSpec`]s saying *what* fails
//! and *when* (at a virtual time, or on the N-th dispatch of a method to
//! a rank). [`FaultInjector`] compiles the plan into an
//! [`hf_core::FaultHook`] the runtime consults on every RPC delivery
//! and inter-model pull. Because triggers key on virtual time and call
//! counts — never wall clock — a plan replays identically run after
//! run, which is what makes every failure scenario a test case.

use std::sync::Arc;

use hf_core::fault::{ExecFault, ExecSite, FaultHook, LinkFault};
use parking_lot::Mutex;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// When a rank-targeted fault fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultTrigger {
    /// The first RPC delivered to the target at or after this virtual
    /// time. (A rank that never receives another RPC never fires — the
    /// injector lives at the delivery site.)
    AtTime(f64),
    /// The `nth` (1-based) dispatch of `method` to the target rank.
    OnCall {
        /// Method name the trigger counts.
        method: String,
        /// 1-based dispatch index that fires the trigger.
        nth: u64,
    },
}

impl FaultTrigger {
    fn matches(&self, site: &ExecSite<'_>) -> bool {
        match self {
            FaultTrigger::AtTime(t) => site.now >= *t,
            FaultTrigger::OnCall { method, nth } => {
                site.method == method && site.call_index == *nth
            }
        }
    }
}

/// What fails.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Kill a rank: poisons its communicators and marks it dead
    /// (one-shot; requires a trigger).
    KillRank {
        /// Worker-group name.
        group: String,
        /// Rank within the group.
        rank: usize,
    },
    /// Drop up to `times` matching RPCs to a rank (transient; the
    /// dispatch path may retry).
    DropRpc {
        /// Worker-group name.
        group: String,
        /// Rank within the group.
        rank: usize,
        /// How many matching dispatches to drop before the fault clears.
        times: u32,
    },
    /// Delay one matching RPC to a rank by `seconds` of virtual time
    /// (one-shot; requires a trigger).
    DelayRpc {
        /// Worker-group name.
        group: String,
        /// Rank within the group.
        rank: usize,
        /// Extra virtual delivery latency.
        seconds: f64,
    },
    /// Multiply execution durations on a device within a virtual-time
    /// window (a straggler).
    SlowDevice {
        /// Global device index.
        device: usize,
        /// Duration multiplier (`> 1.0`).
        factor: f64,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
    },
    /// Add latency to a P2P link within a virtual-time window.
    DelayLink {
        /// Source device index.
        src: usize,
        /// Destination device index.
        dst: usize,
        /// Extra virtual seconds per pull.
        seconds: f64,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
    },
    /// Sever a P2P link within a virtual-time window: pulls fail with a
    /// transient error until the window closes.
    SeverLink {
        /// Source device index.
        src: usize,
        /// Destination device index.
        dst: usize,
        /// Window start (virtual seconds).
        from: f64,
        /// Window end (virtual seconds).
        until: f64,
    },
}

/// One fault: a kind plus (for rank-targeted kinds) its trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What fails.
    pub kind: FaultKind,
    /// When it fires; ignored by window kinds (`SlowDevice`,
    /// `DelayLink`, `SeverLink`), which carry their own windows.
    pub trigger: Option<FaultTrigger>,
}

/// A reproducible failure scenario: an ordered list of fault specs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The faults, checked in order on every hook consultation.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a kill of `rank` in `group` fired by `trigger`.
    pub fn kill_rank(mut self, group: &str, rank: usize, trigger: FaultTrigger) -> Self {
        self.faults.push(FaultSpec {
            kind: FaultKind::KillRank { group: group.into(), rank },
            trigger: Some(trigger),
        });
        self
    }

    /// Adds a drop of up to `times` RPCs to `rank` in `group`, starting
    /// when `trigger` matches.
    pub fn drop_rpc(mut self, group: &str, rank: usize, times: u32, trigger: FaultTrigger) -> Self {
        self.faults.push(FaultSpec {
            kind: FaultKind::DropRpc { group: group.into(), rank, times },
            trigger: Some(trigger),
        });
        self
    }

    /// Adds a one-shot delivery delay of `seconds` to `rank` in `group`.
    pub fn delay_rpc(
        mut self,
        group: &str,
        rank: usize,
        seconds: f64,
        trigger: FaultTrigger,
    ) -> Self {
        self.faults.push(FaultSpec {
            kind: FaultKind::DelayRpc { group: group.into(), rank, seconds },
            trigger: Some(trigger),
        });
        self
    }

    /// Adds a straggler window on `device`.
    pub fn slow_device(mut self, device: usize, factor: f64, from: f64, until: f64) -> Self {
        self.faults.push(FaultSpec {
            kind: FaultKind::SlowDevice { device, factor, from, until },
            trigger: None,
        });
        self
    }

    /// Adds a severed-link window between `src` and `dst`.
    pub fn sever_link(mut self, src: usize, dst: usize, from: f64, until: f64) -> Self {
        self.faults.push(FaultSpec {
            kind: FaultKind::SeverLink { src, dst, from, until },
            trigger: None,
        });
        self
    }

    /// Derives a deterministic single-kill scenario from `seed`: picks a
    /// target group+rank from `targets` (group name, group world size)
    /// and a trigger method from `methods`, firing on call 1..=`max_nth`
    /// of that method. The same seed always produces the same scenario,
    /// so CI can pin a small matrix of seeds and replay failures
    /// exactly.
    pub fn seeded_kill(
        seed: u64,
        targets: &[(&str, usize)],
        methods: &[&str],
        max_nth: u64,
    ) -> Self {
        assert!(!targets.is_empty() && !methods.is_empty() && max_nth >= 1);
        let h0 = splitmix(seed ^ 0x5eed_fa17);
        let (group, world) = targets[(h0 % targets.len() as u64) as usize];
        let h1 = splitmix(h0);
        let rank = (h1 % world as u64) as usize;
        let h2 = splitmix(h1);
        let method = methods[(h2 % methods.len() as u64) as usize];
        let h3 = splitmix(h2);
        let nth = 1 + h3 % max_nth;
        FaultPlan::new().kill_rank(group, rank, FaultTrigger::OnCall { method: method.into(), nth })
    }
}

struct InjectState {
    /// Per-spec fire count (one-shot kinds fire at most once; `DropRpc`
    /// fires up to `times`).
    fired: Vec<u64>,
    log: Vec<String>,
}

/// Compiles a [`FaultPlan`] into the runtime's [`FaultHook`]: hand the
/// injector to [`hf_core::Controller::with_faults`] and the plan's
/// faults fire deterministically as the run replays.
pub struct FaultInjector {
    plan: FaultPlan,
    state: Mutex<InjectState>,
}

impl FaultInjector {
    /// Builds the injector for `plan`, ready to pass as a hook.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        let n = plan.faults.len();
        Arc::new(FaultInjector {
            plan,
            state: Mutex::new(InjectState { fired: vec![0; n], log: Vec::new() }),
        })
    }

    /// Human-readable record of every fault that has fired, in order.
    pub fn log(&self) -> Vec<String> {
        self.state.lock().log.clone()
    }

    /// Total number of fault firings so far.
    pub fn fired_count(&self) -> u64 {
        self.state.lock().fired.iter().sum()
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FaultHook for FaultInjector {
    fn on_execute(&self, site: &ExecSite<'_>) -> ExecFault {
        let mut out = ExecFault::none();
        let mut st = self.state.lock();
        for (i, spec) in self.plan.faults.iter().enumerate() {
            match &spec.kind {
                FaultKind::KillRank { group, rank } => {
                    if st.fired[i] == 0
                        && site.group == group
                        && site.rank == *rank
                        && spec.trigger.as_ref().is_some_and(|t| t.matches(site))
                    {
                        st.fired[i] = 1;
                        let reason = format!(
                            "fault plan: kill {group} rank {rank} during {} (call {}, t={:.4})",
                            site.method, site.call_index, site.now
                        );
                        st.log.push(reason.clone());
                        out.kill = Some(reason);
                    }
                }
                FaultKind::DropRpc { group, rank, times } => {
                    // Retries re-dispatch with a fresh call index, so an
                    // `OnCall` trigger opens at `nth` and stays open
                    // until `times` drops have fired — modeling a fault
                    // that persists across a bounded number of attempts.
                    let open = match &spec.trigger {
                        Some(FaultTrigger::OnCall { method, nth }) => {
                            site.method == method && site.call_index >= *nth
                        }
                        Some(FaultTrigger::AtTime(t)) => site.now >= *t,
                        None => false,
                    };
                    if st.fired[i] < u64::from(*times)
                        && site.group == group
                        && site.rank == *rank
                        && open
                    {
                        st.fired[i] += 1;
                        st.log.push(format!(
                            "fault plan: drop rpc {} to {group} rank {rank} (call {})",
                            site.method, site.call_index
                        ));
                        out.drop_rpc = true;
                    }
                }
                FaultKind::DelayRpc { group, rank, seconds } => {
                    if st.fired[i] == 0
                        && site.group == group
                        && site.rank == *rank
                        && spec.trigger.as_ref().is_some_and(|t| t.matches(site))
                    {
                        st.fired[i] = 1;
                        st.log.push(format!(
                            "fault plan: delay rpc {} to {group} rank {rank} by {seconds}s",
                            site.method
                        ));
                        out.delay_s += seconds;
                    }
                }
                FaultKind::SlowDevice { device, factor, from, until } => {
                    if site.device == *device && site.now >= *from && site.now < *until {
                        st.fired[i] += 1;
                        out.slow_factor = out.slow_factor.max(*factor);
                    }
                }
                FaultKind::DelayLink { .. } | FaultKind::SeverLink { .. } => {}
            }
        }
        out
    }

    fn on_link(&self, src: usize, dst: usize, now: f64) -> LinkFault {
        let mut out = LinkFault::none();
        let mut st = self.state.lock();
        for (i, spec) in self.plan.faults.iter().enumerate() {
            match &spec.kind {
                FaultKind::DelayLink { src: s, dst: d, seconds, from, until }
                    if src == *s && dst == *d && now >= *from && now < *until =>
                {
                    st.fired[i] += 1;
                    out.delay_s += seconds;
                }
                FaultKind::SeverLink { src: s, dst: d, from, until }
                    if src == *s && dst == *d && now >= *from && now < *until =>
                {
                    st.fired[i] += 1;
                    st.log.push(format!("fault plan: severed link {src} -> {dst} at t={now:.4}"));
                    out.severed = true;
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site<'a>(group: &'a str, rank: usize, method: &'a str, idx: u64, now: f64) -> ExecSite<'a> {
        ExecSite { device: 0, group, rank, method, call_index: idx, now }
    }

    #[test]
    fn on_call_trigger_fires_exactly_once() {
        let plan = FaultPlan::new().kill_rank(
            "actor",
            1,
            FaultTrigger::OnCall { method: "update".into(), nth: 2 },
        );
        let inj = FaultInjector::new(plan);
        assert!(inj.on_execute(&site("actor", 1, "update", 1, 0.0)).kill.is_none());
        assert!(inj.on_execute(&site("actor", 0, "update", 2, 0.0)).kill.is_none());
        assert!(inj.on_execute(&site("critic", 1, "update", 2, 0.0)).kill.is_none());
        assert!(inj.on_execute(&site("actor", 1, "update", 2, 0.0)).kill.is_some());
        // One-shot: the same site never fires twice.
        assert!(inj.on_execute(&site("actor", 1, "update", 2, 0.0)).kill.is_none());
        assert_eq!(inj.fired_count(), 1);
        assert_eq!(inj.log().len(), 1);
    }

    #[test]
    fn at_time_trigger_fires_on_first_rpc_past_t() {
        let plan = FaultPlan::new().kill_rank("actor", 0, FaultTrigger::AtTime(5.0));
        let inj = FaultInjector::new(plan);
        assert!(inj.on_execute(&site("actor", 0, "m", 1, 4.99)).kill.is_none());
        assert!(inj.on_execute(&site("actor", 0, "m", 2, 5.0)).kill.is_some());
    }

    #[test]
    fn drop_rpc_clears_after_times() {
        let plan = FaultPlan::new().drop_rpc(
            "actor",
            0,
            2,
            FaultTrigger::OnCall { method: "m".into(), nth: 1 },
        );
        let inj = FaultInjector::new(plan);
        // Retries re-dispatch with fresh call indices: the fault stays
        // open from `nth` until `times` drops have fired, then clears.
        assert!(inj.on_execute(&site("actor", 0, "m", 1, 0.0)).drop_rpc);
        assert!(inj.on_execute(&site("actor", 0, "m", 2, 0.0)).drop_rpc);
        assert!(!inj.on_execute(&site("actor", 0, "m", 3, 0.0)).drop_rpc);
        assert!(!inj.on_execute(&site("actor", 0, "other", 4, 0.0)).drop_rpc);
    }

    #[test]
    fn window_faults_respect_bounds() {
        let plan = FaultPlan::new().slow_device(3, 2.5, 1.0, 2.0).sever_link(0, 1, 0.0, 0.5);
        let inj = FaultInjector::new(plan);
        let mut s = site("g", 0, "m", 1, 1.5);
        s.device = 3;
        assert_eq!(inj.on_execute(&s).slow_factor, 2.5);
        s.now = 2.5;
        assert_eq!(inj.on_execute(&s).slow_factor, 1.0);
        assert!(inj.on_link(0, 1, 0.25).severed);
        assert!(!inj.on_link(0, 1, 0.75).severed);
        assert!(!inj.on_link(1, 0, 0.25).severed);
    }

    #[test]
    fn seeded_kill_is_deterministic_and_seed_sensitive() {
        let targets = [("actor", 4), ("critic", 4)];
        let methods = ["update_actor", "generate_sequences", "compute_values"];
        let a = FaultPlan::seeded_kill(1, &targets, &methods, 4);
        let b = FaultPlan::seeded_kill(1, &targets, &methods, 4);
        assert_eq!(a, b, "same seed, same plan");
        let distinct: std::collections::HashSet<String> = (0..16)
            .map(|s| format!("{:?}", FaultPlan::seeded_kill(s, &targets, &methods, 4)))
            .collect();
        assert!(distinct.len() > 4, "seeds must explore the scenario space: {}", distinct.len());
    }
}
