//! Failure detection and recovery bookkeeping.
//!
//! Detection has three signals, all surfaced by `hf-core`:
//!
//! 1. **Collective abort** — a dead rank poisons its communicators, so
//!    surviving peers return [`CoreError::PeerFailed`] instead of
//!    deadlocking; the dead rank itself reports `WorkerPanicked`.
//! 2. **Deadlines** — `DpFuture::wait` under a
//!    [`hf_core::CallPolicy`] deadline turns any unbounded stall into
//!    [`CoreError::Timeout`].
//! 3. **Heartbeats** — [`probe_cluster`] pings every device mailbox and
//!    reports which device threads still drain messages.
//!
//! [`classify`] maps an error to the recovery action it warrants;
//! [`RecoveryStats`] accumulates MTTR and rollback losses and exports
//! them as `resilience.*` gauges.

use std::time::Duration;

use hf_core::{Controller, CoreError, DeviceHealth};
use hf_telemetry::Telemetry;

/// What a failure means for the recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Retry the same call against the same worker group.
    Transient,
    /// A rank is gone (panic, injected kill, poisoned collective):
    /// respawn the group and restore a checkpoint.
    RankLoss,
    /// A deadline elapsed; treat like rank loss (the stalled rank's
    /// state is unknown).
    Timeout,
    /// An application-level error; recovery will not help.
    Application,
}

/// Classifies `err` into the recovery action it warrants.
pub fn classify(err: &CoreError) -> FailureKind {
    match err {
        CoreError::Transient(_) => FailureKind::Transient,
        CoreError::PeerFailed(_) | CoreError::WorkerPanicked(_) | CoreError::Disconnected(_) => {
            FailureKind::RankLoss
        }
        CoreError::Timeout(_) => FailureKind::Timeout,
        CoreError::Data(_)
        | CoreError::Worker(_)
        | CoreError::Config(_)
        | CoreError::Invariant(_) => FailureKind::Application,
    }
}

/// Aggregate heartbeat view of the cluster's device threads.
#[derive(Debug, Clone)]
pub struct ClusterHealth {
    /// Per-device probe results, sorted by device index.
    pub devices: Vec<DeviceHealth>,
    /// Number of devices that replied within the deadline.
    pub alive: usize,
}

impl ClusterHealth {
    /// Whether every probed device replied.
    pub fn all_alive(&self) -> bool {
        self.alive == self.devices.len()
    }
}

/// Heartbeat-probes every device thread of `ctrl` (wall-clock
/// `deadline` per reply).
pub fn probe_cluster(ctrl: &Controller, deadline: Duration) -> ClusterHealth {
    let devices = ctrl.probe_devices(deadline);
    let alive = devices.iter().filter(|h| h.alive).count();
    ClusterHealth { devices, alive }
}

/// Recovery bookkeeping across a training run: failures observed,
/// recoveries completed, mean time to recovery, and virtual time lost
/// to rollback (work discarded plus restore cost).
#[derive(Debug, Clone, Default)]
pub struct RecoveryStats {
    /// Failures the outer loop observed.
    pub failures: u64,
    /// Successful checkpoint recoveries.
    pub recoveries: u64,
    /// Per-recovery time-to-recover, virtual seconds (failure detected
    /// to training resumed).
    pub mttr_s: Vec<f64>,
    /// Virtual seconds of discarded work plus restore cost.
    pub virtual_time_lost: f64,
    /// Virtual seconds spent inside interrupted checkpoint writes (the
    /// tmp+rename window) — checkpoint overhead wasted by a fault, *not*
    /// discarded training work, so accounted apart from
    /// `virtual_time_lost`.
    pub checkpoint_window_lost_s: f64,
    /// Per-remap mapping-search decision time, virtual-run wall seconds.
    pub remap_search_s: Vec<f64>,
    /// Per-remap live-reshard (restore broadcast) time, virtual seconds.
    pub remap_reshard_s: Vec<f64>,
}

impl RecoveryStats {
    /// Fresh, empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observed failure.
    pub fn record_failure(&mut self) {
        self.failures += 1;
    }

    /// Records a completed recovery: `mttr_s` from detection to resumed
    /// training, `lost_s` of discarded virtual work.
    pub fn record_recovery(&mut self, mttr_s: f64, lost_s: f64) {
        self.recoveries += 1;
        self.mttr_s.push(mttr_s);
        self.virtual_time_lost += lost_s;
    }

    /// Records virtual time a fault burned inside a checkpoint write
    /// that never committed.
    pub fn record_checkpoint_window(&mut self, window_s: f64) {
        self.checkpoint_window_lost_s += window_s;
    }

    /// Records one elastic remap's attribution: `search_s` deciding the
    /// new mapping, `reshard_s` broadcasting state into it. Both are
    /// *components of* the corresponding `record_recovery` MTTR, kept
    /// separately so remap decision cost and reshard cost stay visible.
    pub fn record_remap(&mut self, search_s: f64, reshard_s: f64) {
        self.remap_search_s.push(search_s);
        self.remap_reshard_s.push(reshard_s);
    }

    /// Mean time to recovery (virtual seconds), 0 if none.
    pub fn mean_mttr_s(&self) -> f64 {
        if self.mttr_s.is_empty() {
            0.0
        } else {
            self.mttr_s.iter().sum::<f64>() / self.mttr_s.len() as f64
        }
    }

    /// Exports the stats as `resilience.*` counters and gauges.
    pub fn export(&self, telemetry: &Telemetry) {
        telemetry.set_gauge("resilience.mttr_s", self.mean_mttr_s());
        telemetry.set_gauge("resilience.rollback_lost_s", self.virtual_time_lost);
        telemetry.set_gauge("resilience.ckpt_window_lost_s", self.checkpoint_window_lost_s);
        if !self.remap_search_s.is_empty() {
            telemetry
                .set_gauge("resilience.remap_search_s", self.remap_search_s.iter().sum::<f64>());
            telemetry
                .set_gauge("resilience.remap_reshard_s", self.remap_reshard_s.iter().sum::<f64>());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_variant() {
        assert_eq!(classify(&CoreError::Transient("x".into())), FailureKind::Transient);
        assert_eq!(classify(&CoreError::PeerFailed("x".into())), FailureKind::RankLoss);
        assert_eq!(classify(&CoreError::WorkerPanicked("x".into())), FailureKind::RankLoss);
        assert_eq!(classify(&CoreError::Disconnected("x".into())), FailureKind::RankLoss);
        assert_eq!(classify(&CoreError::Timeout("x".into())), FailureKind::Timeout);
        assert_eq!(classify(&CoreError::Worker("x".into())), FailureKind::Application);
        assert_eq!(classify(&CoreError::Data("x".into())), FailureKind::Application);
        assert_eq!(classify(&CoreError::Config("x".into())), FailureKind::Application);
    }

    #[test]
    fn stats_track_mttr_and_losses() {
        let mut s = RecoveryStats::new();
        s.record_failure();
        s.record_recovery(2.0, 5.0);
        s.record_failure();
        s.record_recovery(4.0, 7.0);
        assert_eq!(s.failures, 2);
        assert_eq!(s.recoveries, 2);
        assert!((s.mean_mttr_s() - 3.0).abs() < 1e-12);
        assert!((s.virtual_time_lost - 12.0).abs() < 1e-12);
        let t = Telemetry::enabled();
        s.export(&t);
        assert_eq!(t.gauge("resilience.mttr_s"), Some(3.0));
        assert_eq!(t.gauge("resilience.rollback_lost_s"), Some(12.0));
    }
}
