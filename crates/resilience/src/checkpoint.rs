//! Sharded, atomic checkpoint/restore for worker groups.
//!
//! **Sharded**: checkpointing dispatches the `save_shard` method to
//! every rank (ALL_TO_ALL). Each rank replies with one padded row
//! carrying *its own slice* of the flat parameter vector plus the
//! matching Adam moments — the (p,t,d)-aware partition for replicated
//! workers (the model-parallel group tiles the vector; only one data-
//! parallel replica owns shards), or the ZeRO shard each rank already
//! holds. Checkpoint volume is therefore ~one copy of the model, not
//! `world` copies.
//!
//! **Atomic**: every shard file is written `tmp+rename`; a manifest
//! records each shard's FNV-1a content hash; a step directory only
//! counts once its `COMMIT` marker (also `tmp+rename`) lands. A crash
//! mid-save leaves at worst an uncommitted directory that
//! [`CheckpointStore::latest_step`] ignores.
//!
//! **Restore** reassembles the full vectors from the owner shards
//! (verifying hashes and that the shard ranges tile the vector exactly),
//! then broadcasts them into a — typically freshly spawned — worker
//! group through the workers' existing `load_checkpoint` method,
//! checksum and RNG round included.

use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

use hf_core::{CoreError, DataProto, Protocol, Result, WorkerGroup};

/// The worker method checkpointing dispatches (ALL_TO_ALL). Workers that
/// support sharded checkpoints implement it by returning one row with
/// columns `shard_params` / `shard_m` / `shard_v` (uniform padded width
/// across ranks) and `shard_meta` (`[rank, start, len, owner, total,
/// gen_round, opt_t]` as f32).
pub const SAVE_SHARD_METHOD: &str = "save_shard";

/// Width of the `shard_meta` column.
pub const SHARD_META_WIDTH: usize = 7;

const SHARD_MAGIC: &[u8; 4] = b"HFS1";

/// FNV-1a over a byte buffer — the same silent-corruption guard the
/// workers' `load_checkpoint` applies to parameter bit patterns.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over the bit pattern of an f32 buffer, matching the workers'
/// checkpoint checksum.
fn param_checksum(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for p in params {
        for b in p.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn io_err(context: &str, e: io::Error) -> CoreError {
    CoreError::Data(format!("checkpoint {context}: {e}"))
}

/// Writes `bytes` to `path` atomically (`path.tmp` then rename), so a
/// crash never leaves a half-written file under the final name.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
        f.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
        f.sync_all().map_err(|e| io_err("sync tmp", e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err("rename", e))
}

/// Everything needed to rebuild a worker's training state: the full
/// flat parameter vector, full Adam moments, the Adam step count, and
/// the generation RNG round.
#[derive(Debug, Clone, PartialEq)]
pub struct AssembledState {
    /// Full flat parameter vector.
    pub params: Vec<f32>,
    /// Full first Adam moment.
    pub opt_m: Vec<f32>,
    /// Full second Adam moment.
    pub opt_v: Vec<f32>,
    /// Adam step count.
    pub opt_t: u64,
    /// Generation RNG round (actor only; 0 otherwise).
    pub gen_round: u64,
}

/// What one `save_group` wrote.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSaveReport {
    /// Checkpoint step.
    pub step: u64,
    /// Owner shards written.
    pub shards: usize,
    /// Bytes on disk (shard files only).
    pub bytes: u64,
    /// Total parameters covered.
    pub total_params: usize,
}

struct ShardEntry {
    file: String,
    start: usize,
    len: usize,
    hash: u64,
}

/// A directory of committed, sharded, content-hashed checkpoints.
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", e))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn step_dir(&self, step: u64) -> PathBuf {
        self.dir.join(format!("step-{step:06}"))
    }

    /// Collects every rank's shard of `group` via [`SAVE_SHARD_METHOD`]
    /// and writes the owner shards plus a hashed manifest under
    /// `step-NNNNNN/`. Not visible to [`CheckpointStore::latest_step`]
    /// until [`CheckpointStore::commit`] lands the step's marker.
    pub fn save_group(&self, group: &WorkerGroup, step: u64) -> Result<GroupSaveReport> {
        let shards = group.call_sync(SAVE_SHARD_METHOD, &DataProto::empty(), Protocol::AllToAll)?;
        let (meta, mw) = shards.f32("shard_meta")?;
        if mw != SHARD_META_WIDTH {
            return Err(CoreError::Data(format!(
                "shard_meta width {mw}, expected {SHARD_META_WIDTH}"
            )));
        }
        let (params, pw) = shards.f32("shard_params")?;
        let (om, omw) = shards.f32("shard_m")?;
        let (ov, ovw) = shards.f32("shard_v")?;
        if omw != pw || ovw != pw {
            return Err(CoreError::Data("shard moment widths must match shard_params".into()));
        }
        let rows = shards.rows();
        let step_dir = self.step_dir(step);
        fs::create_dir_all(&step_dir).map_err(|e| io_err("create step dir", e))?;

        let mut entries: Vec<ShardEntry> = Vec::new();
        let mut header: Option<(usize, u64, u64)> = None;
        let mut bytes = 0u64;
        for r in 0..rows {
            let md = &meta[r * mw..(r + 1) * mw];
            let (rank, start, len, owner) =
                (md[0] as usize, md[1] as usize, md[2] as usize, md[3] != 0.0);
            if !owner {
                continue;
            }
            // Every owner must agree on the vector size and RNG/optimizer
            // rounds; a disagreement means the group's ranks are not in
            // lockstep (e.g. a half-torn-down group mid-remap) and the
            // shards would assemble into a silently inconsistent state.
            let row_header = (md[4] as usize, md[5] as u64, md[6] as u64);
            match header {
                None => header = Some(row_header),
                Some(h) if h == row_header => {}
                Some(h) => {
                    return Err(CoreError::Data(format!(
                        "shard of rank {rank} disagrees with the group: \
                         (total, gen_round, opt_t) = {row_header:?} vs {h:?}"
                    )));
                }
            }
            if len > pw {
                return Err(CoreError::Data(format!(
                    "shard of rank {rank} claims len {len} > padded width {pw}"
                )));
            }
            let mut payload = Vec::with_capacity(4 + 16 + 12 * len + SHARD_MAGIC.len());
            payload.extend_from_slice(SHARD_MAGIC);
            payload.extend_from_slice(&(start as u64).to_le_bytes());
            payload.extend_from_slice(&(len as u64).to_le_bytes());
            for col in [params, om, ov] {
                for x in &col[r * pw..r * pw + len] {
                    payload.extend_from_slice(&x.to_le_bytes());
                }
            }
            let hash = fnv1a(&payload);
            let file = format!("{}-rank-{rank:03}.bin", group.name());
            write_atomic(&step_dir.join(&file), &payload)?;
            bytes += payload.len() as u64;
            entries.push(ShardEntry { file, start, len, hash });
        }
        let (total, gen_round, opt_t) = header.ok_or_else(|| {
            CoreError::Data("no rank owns any shard; refusing to write an empty checkpoint".into())
        })?;
        check_coverage(&entries, total)?;

        let mut manifest = format!(
            "step={step} total={total} gen_round={gen_round} opt_t={opt_t} shards={}\n",
            entries.len()
        );
        for e in &entries {
            manifest.push_str(&format!(
                "shard file={} start={} len={} hash={:016x}\n",
                e.file, e.start, e.len, e.hash
            ));
        }
        write_atomic(&step_dir.join(format!("{}.manifest", group.name())), manifest.as_bytes())?;
        // A re-save of the same step from a *smaller* layout (elastic
        // re-mapping's rebuild-from-seeds path) writes fewer owner
        // shards than a predecessor; drop this group's now-unreferenced
        // files so the directory never resurrects or leaks stale
        // bigger-world shards. The manifest rewrite above is atomic, so
        // referenced files are never removed.
        if let Ok(dirents) = fs::read_dir(&step_dir) {
            let prefix = format!("{}-rank-", group.name());
            for de in dirents.flatten() {
                let name = de.file_name().to_string_lossy().into_owned();
                if name.starts_with(&prefix)
                    && name.ends_with(".bin")
                    && !entries.iter().any(|e| e.file == name)
                {
                    let _ = fs::remove_file(de.path());
                }
            }
        }
        Ok(GroupSaveReport { step, shards: entries.len(), bytes, total_params: total })
    }

    /// Commits `step`: writes the `COMMIT` marker naming the groups the
    /// step covers. Only committed steps are visible to
    /// [`CheckpointStore::latest_step`].
    pub fn commit(&self, step: u64, groups: &[&str]) -> Result<()> {
        self.commit_at(step, groups, 0.0)
    }

    /// Like [`CheckpointStore::commit`], but stamps the marker with the
    /// virtual-clock instant the commit landed (stored as exact f64
    /// bits). Lost-work accounting reads this timestamp back via
    /// [`CheckpointStore::commit_time`] instead of guessing from clock
    /// samples taken around the save, so a fault *during* the next
    /// checkpoint's tmp+rename window is attributed to the checkpoint,
    /// not to discarded training work.
    pub fn commit_at(&self, step: u64, groups: &[&str], now_s: f64) -> Result<()> {
        let content = format!(
            "step={step}\ngroups={}\ntime_bits={:016x}\n",
            groups.join(","),
            now_s.to_bits()
        );
        write_atomic(&self.step_dir(step).join("COMMIT"), content.as_bytes())
    }

    /// The virtual-clock instant `step`'s COMMIT marker landed, if the
    /// step is committed (0.0 for markers written by
    /// [`CheckpointStore::commit`]).
    pub fn commit_time(&self, step: u64) -> Option<f64> {
        let content = fs::read_to_string(self.step_dir(step).join("COMMIT")).ok()?;
        let bits = content
            .lines()
            .find_map(|l| l.strip_prefix("time_bits="))
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())?;
        Some(f64::from_bits(bits))
    }

    /// The newest committed step, if any.
    pub fn latest_step(&self) -> Option<u64> {
        let entries = fs::read_dir(&self.dir).ok()?;
        let mut best = None;
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(step) = name.to_str().and_then(|n| n.strip_prefix("step-")) else {
                continue;
            };
            let Ok(step) = step.parse::<u64>() else { continue };
            if e.path().join("COMMIT").is_file() {
                best = best.max(Some(step));
            }
        }
        best
    }

    /// Reads, hash-verifies, and reassembles `group_name`'s state at
    /// `step`.
    pub fn load_group(&self, step: u64, group_name: &str) -> Result<AssembledState> {
        let step_dir = self.step_dir(step);
        let manifest = fs::read_to_string(step_dir.join(format!("{group_name}.manifest")))
            .map_err(|e| io_err("read manifest", e))?;
        let mut lines = manifest.lines();
        let header =
            lines.next().ok_or_else(|| CoreError::Data("empty checkpoint manifest".into()))?;
        let field = |line: &str, key: &str| -> Result<u64> {
            line.split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{key}=")).map(str::to_string))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CoreError::Data(format!("manifest missing field {key}")))
        };
        let total = field(header, "total")? as usize;
        let gen_round = field(header, "gen_round")?;
        let opt_t = field(header, "opt_t")?;
        let mut entries = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let kv = |key: &str| -> Result<String> {
                line.split_whitespace()
                    .find_map(|p| p.strip_prefix(&format!("{key}=")).map(str::to_string))
                    .ok_or_else(|| CoreError::Data(format!("manifest shard missing {key}")))
            };
            entries.push(ShardEntry {
                file: kv("file")?,
                start: kv("start")?
                    .parse()
                    .map_err(|_| CoreError::Data("bad shard start".into()))?,
                len: kv("len")?.parse().map_err(|_| CoreError::Data("bad shard len".into()))?,
                hash: u64::from_str_radix(&kv("hash")?, 16)
                    .map_err(|_| CoreError::Data("bad shard hash".into()))?,
            });
        }
        check_coverage(&entries, total)?;

        let mut params = vec![0.0f32; total];
        let mut opt_m = vec![0.0f32; total];
        let mut opt_v = vec![0.0f32; total];
        for e in &entries {
            let mut payload = Vec::new();
            fs::File::open(step_dir.join(&e.file))
                .and_then(|mut f| f.read_to_end(&mut payload))
                .map_err(|er| io_err("read shard", er))?;
            if fnv1a(&payload) != e.hash {
                return Err(CoreError::Data(format!(
                    "shard {} content hash mismatch (corrupt checkpoint)",
                    e.file
                )));
            }
            let expect = SHARD_MAGIC.len() + 16 + 12 * e.len;
            if payload.len() != expect || &payload[..4] != SHARD_MAGIC {
                return Err(CoreError::Data(format!("shard {} malformed", e.file)));
            }
            let start = u64::from_le_bytes(payload[4..12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(payload[12..20].try_into().unwrap()) as usize;
            if start != e.start || len != e.len {
                return Err(CoreError::Data(format!(
                    "shard {} header disagrees with manifest",
                    e.file
                )));
            }
            let mut off = 20;
            for dst in [&mut params, &mut opt_m, &mut opt_v] {
                for x in dst[start..start + len].iter_mut() {
                    *x = f32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
                    off += 4;
                }
            }
        }
        Ok(AssembledState { params, opt_m, opt_v, opt_t, gen_round })
    }

    /// Restores `group` from the committed shards at `step`: reassembles
    /// the full state and broadcasts it through the workers'
    /// `load_checkpoint` (ONE_TO_ALL), checksum and RNG round included.
    pub fn restore_group(&self, group: &WorkerGroup, step: u64) -> Result<AssembledState> {
        let st = self.load_group(step, group.name())?;
        let mut d = DataProto::with_rows(1);
        d.insert_f32("params", st.params.clone(), st.params.len());
        d.insert_f32("opt_m", st.opt_m.clone(), st.opt_m.len());
        d.insert_f32("opt_v", st.opt_v.clone(), st.opt_v.len());
        d.meta.insert("checksum".into(), format!("{:016x}", param_checksum(&st.params)));
        d.meta.insert("gen_round".into(), st.gen_round.to_string());
        d.meta.insert("opt_t".into(), st.opt_t.to_string());
        group.call_sync("load_checkpoint", &d, Protocol::OneToAll)?;
        Ok(st)
    }
}

/// Verifies the shard ranges tile `[0, total)` exactly — no gaps, no
/// overlaps. Zero-length shards (padding tails) are allowed.
fn check_coverage(entries: &[ShardEntry], total: usize) -> Result<()> {
    let mut ranges: Vec<(usize, usize)> =
        entries.iter().filter(|e| e.len > 0).map(|e| (e.start, e.len)).collect();
    ranges.sort_unstable();
    let mut cursor = 0usize;
    for (start, len) in ranges {
        if start != cursor {
            return Err(CoreError::Data(format!(
                "checkpoint shards do not tile: expected offset {cursor}, got {start}"
            )));
        }
        cursor = start + len;
    }
    if cursor != total {
        return Err(CoreError::Data(format!(
            "checkpoint shards cover {cursor} of {total} parameters"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    use hf_core::{Controller, RankCtx, Worker, WorkerLayout};
    use hf_parallel::ParallelSpec;
    use hf_simcluster::{ClusterSpec, ResourcePool};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let d =
            std::env::temp_dir().join(format!("hf-resilience-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    /// A minimal stateful worker speaking the sharded-checkpoint
    /// contract: full replicated params/moments per rank, ZeRO-style
    /// ownership split (every rank owns its padded slice).
    struct ToyWorker {
        params: Vec<f32>,
        m: Vec<f32>,
        v: Vec<f32>,
        gen_round: u64,
        opt_t: u64,
    }

    impl ToyWorker {
        fn new(n: usize) -> Self {
            ToyWorker {
                params: (0..n).map(|i| i as f32 + 0.5).collect(),
                m: (0..n).map(|i| i as f32 * 0.1).collect(),
                v: (0..n).map(|i| i as f32 * 0.01).collect(),
                gen_round: 7,
                opt_t: 3,
            }
        }
    }

    impl Worker for ToyWorker {
        fn execute(
            &mut self,
            method: &str,
            data: DataProto,
            ctx: &mut RankCtx,
        ) -> hf_core::Result<DataProto> {
            match method {
                "save_shard" => {
                    let total = self.params.len();
                    let world = ctx.comms.world.size();
                    let rank = ctx.rank;
                    let padded = total.div_ceil(world);
                    let start = (rank * padded).min(total);
                    let end = ((rank + 1) * padded).min(total);
                    let len = end - start;
                    let mut out = DataProto::with_rows(1);
                    for (name, src) in
                        [("shard_params", &self.params), ("shard_m", &self.m), ("shard_v", &self.v)]
                    {
                        let mut row = src[start..end].to_vec();
                        row.resize(padded, 0.0);
                        out.insert_f32(name, row, padded);
                    }
                    out.insert_f32(
                        "shard_meta",
                        vec![
                            rank as f32,
                            start as f32,
                            len as f32,
                            1.0,
                            total as f32,
                            self.gen_round as f32,
                            self.opt_t as f32,
                        ],
                        SHARD_META_WIDTH,
                    );
                    Ok(out)
                }
                "load_checkpoint" => {
                    let (p, _) = data.f32("params")?;
                    let (m, _) = data.f32("opt_m")?;
                    let (v, _) = data.f32("opt_v")?;
                    self.params = p.to_vec();
                    self.m = m.to_vec();
                    self.v = v.to_vec();
                    self.gen_round =
                        data.meta.get("gen_round").and_then(|s| s.parse().ok()).unwrap_or(0);
                    self.opt_t = data.meta.get("opt_t").and_then(|s| s.parse().ok()).unwrap_or(0);
                    Ok(DataProto::empty())
                }
                "scramble" => {
                    for x in &mut self.params {
                        *x = -*x;
                    }
                    self.gen_round = 999;
                    Ok(DataProto::empty())
                }
                "dump" => {
                    let mut out = DataProto::with_rows(1);
                    out.insert_f32("params", self.params.clone(), self.params.len());
                    out.insert_f32("m", self.m.clone(), self.m.len());
                    out.meta.insert("gen_round".into(), self.gen_round.to_string());
                    Ok(out)
                }
                other => Err(CoreError::Worker(format!("no method {other}"))),
            }
        }
    }

    fn setup_world(n_params: usize, world: usize) -> (Controller, hf_core::WorkerGroup) {
        let ctrl = Controller::new(ClusterSpec::a100_with_gpus(world));
        let layout = WorkerLayout::train_only(ParallelSpec::new(1, 1, world));
        let g = ctrl
            .spawn_group("toy", &ResourcePool::contiguous(0, world), layout, |_r| {
                Box::new(ToyWorker::new(n_params)) as Box<dyn Worker>
            })
            .unwrap();
        (ctrl, g)
    }

    fn setup(n_params: usize) -> (Controller, hf_core::WorkerGroup) {
        setup_world(n_params, 2)
    }

    #[test]
    fn save_commit_restore_round_trip() {
        let dir = tmp_dir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        // 103 params across 2 ranks exercises the padded tail.
        let (_ctrl, g) = setup(103);
        let report = store.save_group(&g, 4).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.total_params, 103);
        // Uncommitted steps are invisible.
        assert_eq!(store.latest_step(), None);
        store.commit(4, &["toy"]).unwrap();
        assert_eq!(store.latest_step(), Some(4));

        // Corrupt the live state, then restore.
        g.call_sync("scramble", &DataProto::empty(), Protocol::OneToAll).unwrap();
        let st = store.restore_group(&g, 4).unwrap();
        assert_eq!(st.params.len(), 103);
        assert_eq!(st.gen_round, 7);
        assert_eq!(st.opt_t, 3);
        let dump = g.call_sync("dump", &DataProto::empty(), Protocol::AllToAll).unwrap();
        let (p, w) = dump.f32("params").unwrap();
        assert_eq!(w, 103);
        let expect = ToyWorker::new(103);
        for r in 0..2 {
            assert_eq!(&p[r * w..(r + 1) * w], &expect.params[..], "rank {r} params restored");
        }
        assert_eq!(dump.meta.get("gen_round").map(String::as_str), Some("7"));
    }

    #[test]
    fn corrupted_shard_is_detected_by_content_hash() {
        let dir = tmp_dir("corrupt");
        let store = CheckpointStore::new(&dir).unwrap();
        let (_ctrl, g) = setup(64);
        store.save_group(&g, 1).unwrap();
        store.commit(1, &["toy"]).unwrap();
        // Flip one payload byte in one shard file.
        let shard = store.step_dir(1).join("toy-rank-001.bin");
        let mut bytes = fs::read(&shard).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&shard, &bytes).unwrap();
        let err = store.load_group(1, "toy");
        assert!(matches!(&err, Err(CoreError::Data(m)) if m.contains("hash mismatch")), "{err:?}");
    }

    #[test]
    fn latest_step_picks_newest_committed() {
        let dir = tmp_dir("latest");
        let store = CheckpointStore::new(&dir).unwrap();
        let (_ctrl, g) = setup(16);
        for step in [2, 5, 9] {
            store.save_group(&g, step).unwrap();
        }
        store.commit(2, &["toy"]).unwrap();
        store.commit(5, &["toy"]).unwrap();
        // Step 9 is saved but never committed: a simulated crash
        // mid-checkpoint must roll back to 5, not 9.
        assert_eq!(store.latest_step(), Some(5));
    }

    #[test]
    fn restore_into_strictly_smaller_world() {
        // Elastic re-mapping restores a checkpoint saved under a larger
        // layout into a group with *fewer* ranks (8→7-style shrink).
        // The saved shards tile the vector by the *saving* world, so
        // coverage verification must pass regardless of the restoring
        // world, including when the saved world does not divide the
        // parameter count and the tail shard is zero-length.
        for n_params in [103usize, 3] {
            let dir = tmp_dir("shrink");
            let store = CheckpointStore::new(&dir).unwrap();
            let (_c4, big) = setup_world(n_params, 4);
            let report = store.save_group(&big, 2).unwrap();
            assert_eq!(report.shards, 4, "every rank owns a slice at world 4");
            store.commit(2, &["toy"]).unwrap();

            let (_c2, small) = setup_world(n_params, 2);
            small.call_sync("scramble", &DataProto::empty(), Protocol::OneToAll).unwrap();
            let st = store
                .restore_group(&small, 2)
                .expect("restore into a smaller world must pass coverage");
            assert_eq!(st.params.len(), n_params);
            let dump = small.call_sync("dump", &DataProto::empty(), Protocol::AllToAll).unwrap();
            let (p, w) = dump.f32("params").unwrap();
            let expect = ToyWorker::new(n_params);
            for r in 0..2 {
                assert_eq!(&p[r * w..(r + 1) * w], &expect.params[..], "rank {r} restored");
            }
        }
    }

    #[test]
    fn smaller_world_resave_of_same_step_cleans_stale_shards() {
        // Elastic re-mapping's rebuild-from-seeds path re-saves step 0
        // from the remapped (smaller) group into the same directory the
        // interrupted bigger-world save used. The rewritten manifest is
        // authoritative, but the bigger world's extra shard files must
        // not linger (nor ever be resurrected by a later load).
        let dir = tmp_dir("resave");
        let store = CheckpointStore::new(&dir).unwrap();
        let (_c4, big) = setup_world(103, 4);
        store.save_group(&big, 0).unwrap();
        assert!(store.step_dir(0).join("toy-rank-003.bin").is_file());

        let (_c2, small) = setup_world(103, 2);
        let report = store.save_group(&small, 0).unwrap();
        assert_eq!(report.shards, 2);
        store.commit(0, &["toy"]).unwrap();
        assert!(!store.step_dir(0).join("toy-rank-002.bin").is_file(), "stale shard removed");
        assert!(!store.step_dir(0).join("toy-rank-003.bin").is_file(), "stale shard removed");
        let st = store.load_group(0, "toy").unwrap();
        assert_eq!(st.params, ToyWorker::new(103).params);
    }

    #[test]
    fn disagreeing_owner_shards_are_rejected() {
        // A group whose owners disagree on the vector size (a half-torn-
        // down group mid-remap) must fail the save loudly instead of
        // assembling an inconsistent checkpoint.
        struct SkewWorker(ToyWorker);
        impl Worker for SkewWorker {
            fn execute(
                &mut self,
                method: &str,
                data: DataProto,
                ctx: &mut RankCtx,
            ) -> hf_core::Result<DataProto> {
                let mut out = self.0.execute(method, data, ctx)?;
                if method == "save_shard" && ctx.rank == 1 {
                    let (meta, w) = out.f32("shard_meta").unwrap();
                    let mut skewed = meta.to_vec();
                    skewed[4] += 1.0; // rank 1 claims a different total
                    out.insert_f32("shard_meta", skewed, w);
                }
                Ok(out)
            }
        }
        let ctrl = Controller::new(ClusterSpec::a100_with_gpus(2));
        let layout = WorkerLayout::train_only(ParallelSpec::new(1, 1, 2));
        let g = ctrl
            .spawn_group("toy", &ResourcePool::contiguous(0, 2), layout, |_r| {
                Box::new(SkewWorker(ToyWorker::new(16))) as Box<dyn Worker>
            })
            .unwrap();
        let dir = tmp_dir("skew");
        let store = CheckpointStore::new(&dir).unwrap();
        let err = store.save_group(&g, 1);
        assert!(
            matches!(&err, Err(CoreError::Data(m)) if m.contains("disagrees with the group")),
            "{err:?}"
        );
    }

    #[test]
    fn coverage_check_rejects_gaps() {
        let gap = [
            ShardEntry { file: "a".into(), start: 0, len: 4, hash: 0 },
            ShardEntry { file: "b".into(), start: 6, len: 4, hash: 0 },
        ];
        assert!(check_coverage(&gap, 10).is_err());
        let short = [ShardEntry { file: "a".into(), start: 0, len: 4, hash: 0 }];
        assert!(check_coverage(&short, 10).is_err());
        let ok = [
            ShardEntry { file: "b".into(), start: 4, len: 6, hash: 0 },
            ShardEntry { file: "a".into(), start: 0, len: 4, hash: 0 },
            ShardEntry { file: "c".into(), start: 10, len: 0, hash: 0 },
        ];
        assert!(check_coverage(&ok, 10).is_ok());
    }
}
