//! HybridFlow (EuroSys '25) reproduction: a flexible and efficient RLHF
//! framework, rebuilt in Rust over a simulated GPU cluster substrate.
//!
//! This facade crate re-exports every subsystem:
//!
//! * [`simcluster`] — simulated cluster, virtual NCCL, collective cost models.
//! * [`modelspec`] — Llama model zoo and the three analytic simulators
//!   (training / inference / generation) used by auto-mapping.
//! * [`parallel`] — 3D parallel groups, micro-DP grouping, shard ownership.
//! * [`nn`] — tiny-but-real LM with reverse-mode autograd and Adam.
//! * [`genserve`] — paged-KV continuous-batching generation engine (the
//!   vLLM substitute): block manager, FCFS scheduler with
//!   preemption-by-recompute, prefix caching.
//! * [`core`] — the hybrid programming model: single controller, worker
//!   groups, transfer protocols, `DataProto`.
//! * [`hybridengine`] — zero-redundancy actor resharding (3D-HybridEngine).
//! * [`rlhf`] — model workers and the PPO / ReMax / Safe-RLHF / GRPO drivers.
//! * [`mapping`] — the auto device-mapping search (Algorithms 1 & 2).
//! * [`baselines`] — DeepSpeed-Chat / OpenRLHF / NeMo-Aligner execution models.
//! * [`telemetry`] — virtual-clock span tracing, metrics, Perfetto export.
//! * [`resilience`] — deterministic fault injection, failure detection,
//!   sharded checkpoint/restore (the Ray fault-tolerance substitute).
//! * [`rewards`] — verifiable-reward serving: deterministic program
//!   verifiers evaluated by a virtual-time sandboxed worker pool with
//!   budgets, straggler cancellation, and retry-on-timeout.
//! * [`serve`] — multi-tenant SLO-aware serving front-end over the
//!   generation engine: seeded arrival processes, priority admission
//!   with per-tenant cache headroom, cross-tenant prefix-cache
//!   attribution, and the co-located serve+train capacity scenario.
//! * [`audit`] — cross-layout differential conformance sweeps, runtime
//!   invariant auditors, deterministic-replay ordering checks. Linking
//!   it arms the `audit`-feature invariant checks of the layers below.
//! * [`insight`] — causal span graph, critical-path and bubble analysis,
//!   what-if overlap bounds, and the deterministic perf regression gate.
//!
//! See `DESIGN.md` for the substitution table (paper dependency → substrate
//! built here) and the per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub use hf_audit as audit;
pub use hf_baselines as baselines;
pub use hf_core as core;
pub use hf_genserve as genserve;
pub use hf_hybridengine as hybridengine;
pub use hf_insight as insight;
pub use hf_mapping as mapping;
pub use hf_modelspec as modelspec;
pub use hf_nn as nn;
pub use hf_parallel as parallel;
pub use hf_resilience as resilience;
pub use hf_rewards as rewards;
pub use hf_rlhf as rlhf;
pub use hf_serve as serve;
pub use hf_simcluster as simcluster;
pub use hf_telemetry as telemetry;
