//! Cross-crate invariant: model placement changes *performance*, never
//! *semantics*. The same RLHF run (same seeds, same layouts) must
//! produce bit-identical learning trajectories whether the models are
//! colocated on one pool or placed standalone — the decoupling the
//! hybrid programming model promises (§4.2: "Any change in the
//! distributed frameworks does not affect the code of the RLHF
//! algorithm").

use hybridflow::core::{Controller, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::make_prompts;
use hybridflow::rlhf::{ppo_iteration, ModelPlacement, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

fn run_trajectory(placement: &Placement, gpus: usize, iters: u64) -> Vec<f32> {
    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(gpus));
    let cfg = RlhfConfig::tiny();
    let sys = RlhfSystem::build(&ctrl, placement, cfg.clone()).expect("build");
    let mut scores = Vec::new();
    for i in 0..iters {
        let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, i);
        scores.push(ppo_iteration(&sys, &ctrl, &prompts).expect("iter").mean_score);
    }
    scores
}

#[test]
fn colocated_and_standalone_runs_are_bit_identical() {
    let spec = ParallelSpec::new(1, 1, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let actor_layout = WorkerLayout::with_gen(gen);
    let other_layout = WorkerLayout::train_only(spec);

    let colocated = Placement::colocated(ResourcePool::contiguous(0, 2), actor_layout, true, false);
    let standalone = Placement {
        actor: ModelPlacement { pool: ResourcePool::contiguous(0, 2), layout: actor_layout },
        critic: Some(ModelPlacement { pool: ResourcePool::contiguous(2, 2), layout: other_layout }),
        reference: ModelPlacement { pool: ResourcePool::contiguous(4, 2), layout: other_layout },
        reward: ModelPlacement { pool: ResourcePool::contiguous(6, 2), layout: other_layout },
        cost: None,
    };

    let a = run_trajectory(&colocated, 2, 5);
    let b = run_trajectory(&standalone, 8, 5);
    assert_eq!(a, b, "placement must not change algorithm semantics");
}

#[test]
fn standalone_run_is_faster_in_virtual_time_per_preparation_stage() {
    // Disjoint pools let the preparation-stage models run concurrently;
    // verify virtual time reflects that (the §8.3 mechanism), while the
    // colocated run time-shares.
    let spec = ParallelSpec::new(1, 1, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let actor_layout = WorkerLayout::with_gen(gen);
    let other_layout = WorkerLayout::train_only(spec);
    let cfg = RlhfConfig::tiny();

    let t_colocated = {
        let ctrl = Controller::new(ClusterSpec::a100_with_gpus(2));
        let placement =
            Placement::colocated(ResourcePool::contiguous(0, 2), actor_layout, true, false);
        let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).unwrap();
        let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
        ppo_iteration(&sys, &ctrl, &prompts).unwrap().virtual_seconds
    };
    let t_standalone = {
        let ctrl = Controller::new(ClusterSpec::a100_with_gpus(8));
        let placement = Placement {
            actor: ModelPlacement { pool: ResourcePool::contiguous(0, 2), layout: actor_layout },
            critic: Some(ModelPlacement {
                pool: ResourcePool::contiguous(2, 2),
                layout: other_layout,
            }),
            reference: ModelPlacement {
                pool: ResourcePool::contiguous(4, 2),
                layout: other_layout,
            },
            reward: ModelPlacement { pool: ResourcePool::contiguous(6, 2), layout: other_layout },
            cost: None,
        };
        let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).unwrap();
        let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
        ppo_iteration(&sys, &ctrl, &prompts).unwrap().virtual_seconds
    };
    assert!(
        t_standalone < t_colocated,
        "4x the devices with concurrent stages must cost less virtual time: \
         standalone {t_standalone} vs colocated {t_colocated}"
    );
}
