//! Tier-1 conformance gate: a pinned-seed slice of the hf-audit
//! differential layout sweep. Every sampled `(p,t,d) × regrouping ×
//! optimizer-sharding` configuration must reproduce the `1-1-1`
//! single-device reference byte for byte — weights, Adam moments,
//! logprobs, and generated token streams. The full ≥200-config sweep
//! runs in the `audit_sweep` bench bin; this slice keeps the invariant
//! under plain `cargo test`.

use hybridflow::audit::{sample_configs, sweep};

#[test]
fn pinned_mini_sweep_matches_reference_bit_for_bit() {
    let configs = sample_configs(16, 4, 0xA0D17);
    let report = sweep(&configs, 1, |_, _| {});
    assert!(report.checked > 16, "reference runs must be counted too");
    assert!(
        report.clean(),
        "cross-layout divergences:\n{}",
        report
            .divergences
            .iter()
            .map(|d| {
                let min =
                    d.minimal.map(|m| format!(" (minimal: {})", m.label())).unwrap_or_default();
                format!("  {}: {}{min}", d.config.label(), d.detail)
            })
            .collect::<Vec<_>>()
            .join("\n")
    );
}
