//! The functional runtime and the analytic simulators must agree: the
//! virtual time a threaded micro-DP all-gather charges equals the cost
//! model's closed-form prediction, and the resharded bytes match the
//! Table 2 volume accounting.

use std::sync::Arc;
use std::thread;

use hybridflow::hybridengine::{transition_time, ActorShards, EngineMode, HybridEngineRank};
use hybridflow::modelspec::ModelConfig;
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec, ShardLayout};
use hybridflow::simcluster::{
    ClusterSpec, CollectiveKind, CommCostModel, CommGroup, Communicator, DeviceId, VirtualClock,
};

#[test]
fn threaded_transition_time_matches_analytic_cost() {
    let spec = ParallelSpec::new(1, 4, 2);
    let grouping = GenGrouping::new(spec, 1, 2, GroupingMethod::Strided);
    let layout = ShardLayout::uniform(4, 64);
    let params: Vec<f32> = (0..layout.total_params()).map(|i| i as f32).collect();
    let shards = ActorShards::scatter(&params, layout.clone(), grouping);
    let cluster = Arc::new(ClusterSpec::a100_with_gpus(8));
    let cost = CommCostModel::default();

    // Analytic prediction: one all-gather of the shard within a micro-DP
    // group of size d_g = 2, payload = per-rank shard × group size.
    let shard_bytes = (shards.train_buf(0).len() * 4) as f64;
    let group0 = shards.gather_group(0);
    let devices0: Vec<DeviceId> = group0.iter().map(|&r| DeviceId(r)).collect();
    let predicted = cost.collective_time(
        &cluster,
        &devices0,
        CollectiveKind::AllGather,
        shard_bytes * group0.len() as f64,
    );

    // Run the real threaded transition and read the charged clocks.
    let mut groups: Vec<(Vec<usize>, CommGroup)> = Vec::new();
    for r in 0..8 {
        let g = shards.gather_group(r);
        if !groups.iter().any(|(ranks, _)| ranks == &g) {
            let devs = g.iter().map(|&x| DeviceId(x)).collect();
            groups.push((g, CommGroup::new(devs)));
        }
    }
    let handles: Vec<_> = (0..8)
        .map(|r| {
            let mut eng =
                HybridEngineRank::new(r, grouping, layout.clone(), shards.train_buf(r).to_vec());
            let (ranks, grp) =
                groups.iter().find(|(ranks, _)| ranks.contains(&r)).expect("group").clone();
            let pos = ranks.iter().position(|&x| x == r).unwrap();
            let comm = Communicator::new(grp, pos, cluster.clone(), cost.clone());
            thread::spawn(move || {
                let mut clock = VirtualClock::new();
                eng.to_generation(&comm, &mut clock);
                clock.now()
            })
        })
        .collect();
    for h in handles {
        let measured = h.join().unwrap();
        assert!(
            (measured - predicted).abs() < 1e-9,
            "functional virtual time {measured} must equal analytic {predicted}"
        );
    }

    // And the analytic transition_time for the same setting agrees.
    let devices: Vec<DeviceId> = (0..8).map(DeviceId).collect();
    let analytic = transition_time(
        EngineMode::HybridFlow,
        &ModelConfig::tiny(), // unused fields beyond layers are fine here
        &spec,
        &grouping,
        &devices,
        &cluster,
        &cost,
    );
    assert!(analytic > 0.0);
}

#[test]
fn recv_bytes_sum_matches_comm_volume_claim() {
    // Table 2: per-GPU communication volume under the strided method is
    // (tp − t_g·p_g)/(t_g·p_g·tp) · M.
    let spec = ParallelSpec::new(2, 4, 2);
    let grouping = GenGrouping::new(spec, 2, 2, GroupingMethod::Strided);
    let layout = ShardLayout::uniform(8, 64);
    let params: Vec<f32> = (0..layout.total_params()).map(|i| i as f32).collect();
    let shards = ActorShards::scatter(&params, layout.clone(), grouping);
    let m_bytes = (layout.total_params() * 4) as f64;
    let tp = spec.mp() as f64;
    let gen_mp = 4.0;
    let expected = (tp - gen_mp) / (gen_mp * tp) * m_bytes;
    for rank in 0..spec.world() {
        assert!(
            (shards.recv_bytes(rank) as f64 - expected).abs() < 1.0,
            "rank {rank}: {} vs {expected}",
            shards.recv_bytes(rank)
        );
    }
}
