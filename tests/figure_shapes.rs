//! Cross-crate invariants behind every figure of §8: the qualitative
//! shapes the paper reports must hold in this reproduction (who wins,
//! roughly by what factor, where crossovers fall).

use hybridflow::baselines::{estimate, System};
use hybridflow::mapping::{AlgoKind, DataflowSpec, Mapper, PlacementPlan};
use hybridflow::modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hybridflow::simcluster::ClusterSpec;

fn perf(gpus: usize) -> PerfModel {
    PerfModel::new(ClusterSpec::a100_with_gpus(gpus))
}

fn ppo(model: ModelConfig) -> DataflowSpec {
    DataflowSpec::uniform(AlgoKind::Ppo, model, RlhfWorkload::paper())
}

#[test]
fn fig9_hybridflow_wins_at_every_feasible_point() {
    for (model, sizes) in [
        (ModelConfig::llama_7b(), vec![8usize, 32, 128]),
        (ModelConfig::llama_13b(), vec![16usize, 64]),
        (ModelConfig::llama_70b(), vec![64usize, 128]),
    ] {
        for gpus in sizes {
            let pm = perf(gpus);
            let df = ppo(model.clone());
            let hf = estimate(System::HybridFlow, &pm, &df, gpus)
                .unwrap_or_else(|| panic!("HybridFlow must fit {} on {gpus}", model.name));
            for sys in [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner] {
                if let Some(e) = estimate(sys, &pm, &df, gpus) {
                    assert!(
                        hf.total() < e.total(),
                        "{} {gpus} GPUs: {} must lose",
                        model.name,
                        sys.label()
                    );
                }
            }
        }
    }
}

#[test]
fn fig9_speedup_band_matches_paper() {
    // Paper headline: 1.53×–20.57× across algorithms and scales. Verify
    // a sample of points falls in a generous version of that band.
    let mut ratios = Vec::new();
    for (model, gpus) in [
        (ModelConfig::llama_7b(), 16usize),
        (ModelConfig::llama_13b(), 32),
        (ModelConfig::llama_34b(), 64),
    ] {
        let pm = perf(gpus);
        let df = ppo(model);
        let hf = estimate(System::HybridFlow, &pm, &df, gpus).unwrap().total();
        for sys in [System::DeepSpeedChat, System::OpenRlhf, System::NemoAligner] {
            if let Some(e) = estimate(sys, &pm, &df, gpus) {
                ratios.push(e.total() / hf);
            }
        }
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(min > 1.0, "every baseline slower (min ratio {min})");
    assert!(max < 40.0, "gaps must stay physical (max ratio {max})");
    assert!(max > 5.0, "the NeMo gap must be an order of magnitude (max ratio {max})");
}

#[test]
fn fig10_remax_skips_nemo_and_keeps_ordering() {
    let pm = perf(16);
    let df = DataflowSpec::uniform(AlgoKind::ReMax, ModelConfig::llama_7b(), RlhfWorkload::paper());
    assert!(estimate(System::NemoAligner, &pm, &df, 16).is_none());
    let hf = estimate(System::HybridFlow, &pm, &df, 16).unwrap();
    let ds = estimate(System::DeepSpeedChat, &pm, &df, 16).unwrap();
    assert!(hf.total() < ds.total());
    // ReMax's double generation pass must cost more generation time than
    // PPO's single pass under the same system.
    let df_ppo = ppo(ModelConfig::llama_7b());
    let hf_ppo = estimate(System::HybridFlow, &pm, &df_ppo, 16).unwrap();
    assert!(hf.generation > hf_ppo.generation);
}

#[test]
fn fig11_safe_rlhf_adds_cost_model_overhead() {
    let pm = perf(16);
    let df_safe =
        DataflowSpec::uniform(AlgoKind::SafeRlhf, ModelConfig::llama_7b(), RlhfWorkload::paper());
    let df_ppo = ppo(ModelConfig::llama_7b());
    let safe = estimate(System::HybridFlow, &pm, &df_safe, 16).unwrap();
    let ppo = estimate(System::HybridFlow, &pm, &df_ppo, 16).unwrap();
    assert!(safe.total() >= ppo.total(), "the extra cost model cannot make iterations faster");
}

#[test]
fn fig12_crossover_colocate_small_split_large() {
    // §8.3 for 34B: colocate best at ≤64 GPUs, split best at 96–128.
    let df = ppo(ModelConfig::llama_34b());
    let roles = df.roles();
    let best_named = |gpus: usize| -> &'static str {
        let mapper = Mapper::new(perf(gpus), df.clone(), gpus);
        let mut best = ("none", 0.0f64);
        for (name, plan) in [
            ("colocate", PlacementPlan::colocate(&roles)),
            ("standalone", PlacementPlan::standalone(&roles)),
            ("split", PlacementPlan::split(&roles)),
        ] {
            if let Some(m) = mapper.evaluate_plan(&plan) {
                let tp = m.throughput(&df);
                if tp > best.1 {
                    best = (name, tp);
                }
            }
        }
        best.0
    };
    assert_eq!(best_named(64), "colocate");
    assert_eq!(best_named(128), "split");
}

#[test]
fn fig13_colocate_dominates_small_scale_with_large_critic() {
    // §8.3: with a 70B critic/reward, colocate beats the others by
    // ~45% on average up to 64 GPUs.
    let df = DataflowSpec::large_critic(RlhfWorkload::paper());
    let roles = df.roles();
    let mapper = Mapper::new(perf(64), df.clone(), 64);
    let colocate = mapper.evaluate_plan(&PlacementPlan::colocate(&roles)).unwrap().throughput(&df);
    let split = mapper.evaluate_plan(&PlacementPlan::split(&roles)).unwrap().throughput(&df);
    assert!(
        colocate > split * 1.2,
        "colocate {colocate} must clearly beat split {split} at 64 GPUs"
    );
}

#[test]
fn fig14_hybridflow_transition_smallest_and_flat() {
    let mut hf_transitions = Vec::new();
    for (model, gpus) in [(ModelConfig::llama_7b(), 8usize), (ModelConfig::llama_13b(), 16)] {
        let pm = perf(gpus);
        let df = ppo(model);
        let hf = estimate(System::HybridFlow, &pm, &df, gpus).unwrap();
        let ds = estimate(System::DeepSpeedChat, &pm, &df, gpus).unwrap();
        assert!(hf.transition <= ds.transition);
        hf_transitions.push(hf.transition);
    }
    // And across cluster scales for a fixed model, HybridFlow stays flat.
    let df = ppo(ModelConfig::llama_13b());
    let t16 = estimate(System::HybridFlow, &perf(16), &df, 16).unwrap().transition;
    let t64 = estimate(System::HybridFlow, &perf(64), &df, 64).unwrap().transition;
    assert!(
        (t64 - t16).abs() <= t16.max(t64),
        "transition must not grow with cluster scale: {t16} vs {t64}"
    );
}

#[test]
fn fig16_search_is_fast_and_scales() {
    use std::time::Instant;
    let mut times = Vec::new();
    for (model, gpus) in [(ModelConfig::llama_7b(), 16usize), (ModelConfig::llama_34b(), 64)] {
        let df = ppo(model);
        let mapper = Mapper::new(perf(gpus), df, gpus);
        let t0 = Instant::now();
        assert!(mapper.search().is_some());
        times.push(t0.elapsed().as_secs_f64());
    }
    // The paper bounds its Python search at ~30 minutes; the Rust
    // reimplementation must stay far below a minute per setting.
    assert!(times.iter().all(|&t| t < 60.0), "{times:?}");
}
