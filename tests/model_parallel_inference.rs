//! Megatron-style model-parallel inference executing for real: a 2×2
//! (pipeline × tensor) grid of threads, each holding only its weight
//! shard, computing the forward pass with genuine all-reduce collectives
//! inside each TP group and point-to-point activation hand-offs between
//! pipeline stages — and matching the single-process full model.

#![allow(clippy::needless_range_loop)] // grid indices mirror the rank math

use std::sync::Arc;
use std::thread;

use hybridflow::nn::{LmConfig, ShardedLm, StageOutput, TinyLm};
use hybridflow::simcluster::{
    ClusterSpec, CommCostModel, CommGroup, Communicator, DeviceId, P2pNetwork, VirtualClock,
};

#[test]
fn threaded_2d_model_parallel_matches_full_model() {
    let (p, t) = (2usize, 2usize);
    let lm = TinyLm::new(LmConfig::tiny(), 99);
    let ids = vec![4usize, 17, 2, 9, 27];

    // Reference: the full single-process forward.
    let fp = lm.forward(&ids);
    let full_logits = fp.tape.value(fp.logits).data().to_vec();
    let full_values = fp.tape.value(fp.values).data().to_vec();

    // Grid: rank = p_idx · t + t_idx on device rank.
    let cluster = Arc::new(ClusterSpec::a100_with_gpus(p * t));
    let cost = CommCostModel::default();
    let p2p = P2pNetwork::new(cluster.clone(), cost.clone());
    // One communicator group per TP row.
    let tp_groups: Vec<CommGroup> =
        (0..p).map(|pi| CommGroup::new((0..t).map(|ti| DeviceId(pi * t + ti)).collect())).collect();

    let mut handles = Vec::new();
    for pi in 0..p {
        for ti in 0..t {
            let shard = ShardedLm::from_full(&lm, pi, p, ti, t);
            let comm = Communicator::new(tp_groups[pi].clone(), ti, cluster.clone(), cost.clone());
            let p2p = p2p.clone();
            let ids = ids.clone();
            handles.push(thread::spawn(move || {
                let mut clock = VirtualClock::new();
                let me = DeviceId(pi * t + ti);
                // Stage input: embed on stage 0, receive activations
                // otherwise (every TP rank of a stage gets a copy from
                // its column-peer on the previous stage).
                let h_in = if pi == 0 {
                    shard.embed(&ids)
                } else {
                    let prev = DeviceId((pi - 1) * t + ti);
                    let (rows, cols, data): (usize, usize, Vec<f32>) =
                        p2p.recv(&mut clock, prev, me);
                    hybridflow::nn::Tensor::new(data, rows, cols)
                };
                let out =
                    shard.forward_stage(h_in, |partial| comm.all_reduce_sum(&mut clock, partial));
                match out {
                    StageOutput::Hidden(hn) => {
                        let next = DeviceId((pi + 1) * t + ti);
                        let bytes = (hn.len() * 4) as f64;
                        p2p.send(
                            &clock,
                            me,
                            next,
                            (hn.rows(), hn.cols(), hn.data().to_vec()),
                            bytes,
                        );
                        None
                    }
                    StageOutput::Final { logits, values } => {
                        Some((logits.data().to_vec(), values.data().to_vec(), clock.now()))
                    }
                }
            }));
        }
    }

    let mut finals = Vec::new();
    for h in handles {
        if let Some(f) = h.join().unwrap() {
            finals.push(f);
        }
    }
    assert_eq!(finals.len(), t, "every last-stage TP rank finalizes");
    let close = |a: &[f32], b: &[f32]| {
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(x, y)| (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())))
    };
    for (logits, values, clock) in &finals {
        assert!(close(logits, &full_logits), "TP/PP logits diverge from full model");
        assert!(close(values, &full_values));
        assert!(*clock > 0.0, "collectives and hand-offs must cost virtual time");
    }
    // Both last-stage TP ranks agree exactly (same all-reduced stream).
    assert_eq!(finals[0].0, finals[1].0);
}

#[test]
fn model_parallel_shards_hold_fractional_memory() {
    let lm = TinyLm::new(LmConfig::tiny(), 5);
    let full = lm.flat().len();
    let shard = ShardedLm::from_full(&lm, 0, 2, 1, 4);
    assert!(
        shard.resident_params() < full / 2,
        "a 2×4 grid shard must hold well under half the model ({} vs {full})",
        shard.resident_params()
    );
}
