//! Cross-crate telemetry invariants: recording must be an observer, not
//! a participant. Spans carry well-formed virtual timestamps, byte
//! counters agree with the `DataProto` payloads and with the analytical
//! Table 2 transition volumes, and turning telemetry off changes
//! nothing about what the runtime computes.

use hybridflow::core::{Controller, DataProto, Protocol, RankCtx, Worker, WorkerLayout};
use hybridflow::hybridengine::{transition_metrics, EngineMode};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::make_prompts;
use hybridflow::rlhf::{ppo_iteration, IterStats, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, CommCostModel, ResourcePool};
use hybridflow::telemetry::{SpanKind, Telemetry, CONTROLLER_TRACK};

fn traced_controller(gpus: usize) -> Controller {
    Controller::with_telemetry(
        ClusterSpec::a100_with_gpus(gpus),
        CommCostModel::default(),
        Telemetry::enabled(),
    )
}

/// One tiny-model PPO iteration on 4 GPUs (colocated actor+critic,
/// strided micro-DP generation grouping) under the given controller.
fn ppo_once(ctrl: &Controller) -> IterStats {
    let cfg = RlhfConfig::tiny();
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 4),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let sys = RlhfSystem::build(ctrl, &placement, cfg.clone()).expect("build");
    let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
    ppo_iteration(&sys, ctrl, &prompts).expect("iter")
}

#[test]
fn disabled_telemetry_is_bit_identical_to_enabled() {
    // The recorder reads clocks but never advances them, so the exact
    // same trajectory — including virtual time — must come out whether
    // or not anyone is watching.
    let plain = ppo_once(&Controller::new(ClusterSpec::a100_with_gpus(4)));
    let traced_ctrl = traced_controller(4);
    let traced = ppo_once(&traced_ctrl);
    assert_eq!(plain, traced, "telemetry must not perturb the run");
    assert!(
        !traced_ctrl.telemetry().spans().is_empty(),
        "the traced run should actually have recorded something"
    );
}

#[test]
fn spans_are_well_formed_nested_and_monotonic() {
    let ctrl = traced_controller(4);
    ppo_once(&ctrl);
    let spans = ctrl.telemetry().spans();
    assert!(!spans.is_empty());
    for s in &spans {
        assert!(s.end >= s.start, "span {} runs backwards: {:?}", s.name, (s.start, s.end));
        assert!(s.start >= 0.0, "span {} starts before the epoch", s.name);
    }

    // Each simulated device executes one call at a time, so Exec spans
    // on a device track must not overlap.
    let mut tracks: Vec<String> = spans.iter().map(|s| s.track.clone()).collect();
    tracks.sort();
    tracks.dedup();
    for track in tracks.iter().filter(|t| t.starts_with("gpu-")) {
        let mut execs: Vec<(f64, f64)> = spans
            .iter()
            .filter(|s| &s.track == track && s.kind == SpanKind::Exec)
            .map(|s| (s.start, s.end))
            .collect();
        execs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in execs.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "overlapping Exec spans on {track}: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    // The three phase spans tile the iteration in order, and every
    // controller-side call span nests inside the phase envelope.
    let phase = |name: &str| -> (f64, f64) {
        spans
            .iter()
            .find(|s| s.kind == SpanKind::Phase && s.name == name)
            .map(|s| (s.start, s.end))
            .unwrap_or_else(|| panic!("missing phase span {name}"))
    };
    let generation = phase("generation");
    let preparation = phase("experience_preparation");
    let training = phase("training");
    assert_eq!(generation.1, preparation.0, "phases must be contiguous");
    assert_eq!(preparation.1, training.0, "phases must be contiguous");
    for s in spans.iter().filter(|s| s.track == CONTROLLER_TRACK && s.kind == SpanKind::Dispatch) {
        assert!(
            s.start >= generation.0 - 1e-12 && s.end <= training.1 + 1e-12,
            "call span {} [{}, {}] escapes the iteration envelope [{}, {}]",
            s.name,
            s.start,
            s.end,
            generation.0,
            training.1
        );
    }
}

#[test]
fn genserve_steps_nest_in_generation_phase_and_counters_export() {
    let ctrl = traced_controller(4);
    ppo_once(&ctrl);
    let tel = ctrl.telemetry();
    let spans = tel.spans();

    // Per-step engine spans live on per-device generation sub-tracks
    // and sit (in virtual time) inside the controller's generation
    // phase envelope.
    let gen_phase = spans
        .iter()
        .find(|s| s.kind == SpanKind::Phase && s.name == "generation")
        .expect("generation phase span");
    let steps: Vec<_> = spans.iter().filter(|s| s.name == "genserve.step").collect();
    assert!(!steps.is_empty(), "generation must record per-step engine spans");
    for s in &steps {
        assert!(
            s.track.starts_with("gpu-") && s.track.ends_with("/genserve"),
            "genserve.step on unexpected track {}",
            s.track
        );
        assert!(
            s.start >= gen_phase.start - 1e-12 && s.end <= gen_phase.end + 1e-12,
            "genserve.step [{}, {}] escapes the generation phase [{}, {}]",
            s.start,
            s.end,
            gen_phase.start,
            gen_phase.end
        );
    }

    // The scheduler's aggregate counters made it into the registry,
    // tagged with their consumer (the training rollout)...
    assert!(tel.counter("genserve.rollout.steps") > 0);
    assert!(tel.counter("genserve.rollout.generated_tokens") > 0);
    assert!(
        tel.metrics().counters.contains_key("genserve.rollout.preemptions"),
        "preemption counter must be exported even when zero"
    );
    assert!(tel.gauge("genserve.rollout.tokens_per_s").unwrap_or(0.0) > 0.0);
    assert!(
        steps.iter().all(|s| s.args.iter().any(|(k, v)| k == "consumer" && v == "rollout")),
        "engine step spans must carry their consumer tag"
    );

    // ... and the time-varying ones (batch size, cache-block
    // utilization) export as Perfetto counter-track events.
    assert!(!tel.samples().is_empty());
    let trace = tel.chrome_trace();
    assert!(trace.contains("\"ph\":\"C\""), "trace must carry counter events");
    assert!(trace.contains("genserve.rollout.batch_size"));
    assert!(trace.contains("genserve.rollout.block_utilization"));

    // The per-iteration digest breaks the engine metrics out beside the
    // search and data-plane sections.
    assert!(tel.summary().contains("genserve:"), "summary must have a genserve section");
}

#[test]
fn protocol_byte_counters_match_dataproto_sizes() {
    let ctrl = traced_controller(4);
    let pool = ResourcePool::contiguous(0, 4);
    let layout = WorkerLayout::train_only(ParallelSpec::new(1, 1, 4));
    fn echo() -> Box<dyn Worker> {
        Box::new(|_m: &str, d: DataProto, _c: &mut RankCtx| Ok(d))
    }
    let g = ctrl.spawn_group("echo", &pool, layout, |_r| echo()).unwrap();

    let rows = 8;
    let mut batch = DataProto::with_rows(rows);
    batch.insert_f32("v", (0..rows * 3).map(|v| v as f32).collect(), 3);
    let batch_bytes = batch.bytes() as u64;
    assert!(batch_bytes > 0);

    // DP_PROTO partitions the rows across the four dp groups; the
    // dispatched chunks must sum to exactly the batch, and echoing them
    // back collects exactly the batch again.
    let out = g.call_sync("echo", &batch, Protocol::Dp).unwrap();
    let tel = ctrl.telemetry();
    assert_eq!(tel.counter("protocol.Dp.dispatch_bytes"), batch_bytes);
    assert_eq!(tel.counter("protocol.Dp.collect_bytes"), out.bytes() as u64);
    assert_eq!(out.bytes() as u64, batch_bytes);

    // ONE_TO_ALL broadcasts the whole batch to every rank, so the
    // counter sees one full copy per rank shipped; the echoed
    // collection likewise concatenates one copy per rank.
    let out = g.call_sync("echo", &batch, Protocol::OneToAll).unwrap();
    assert_eq!(tel.counter("protocol.OneToAll.dispatch_bytes"), batch_bytes * 4);
    assert_eq!(tel.counter("protocol.OneToAll.collect_bytes"), out.bytes() as u64);
}

#[test]
fn transition_byte_counter_matches_table2_analytics() {
    // 8-GPU layout: training 1-4-2, generation 1-2 with strided
    // micro-DP grouping (micro-DP groups of size t/t_g = 2). Table 2's
    // HybridFlow row says each GPU transfers (t - t_g)/(t_g · t) · M;
    // the functional engine's recorded counter must agree exactly. M
    // here is the resharded parameter region (the residual blocks —
    // embeddings and heads are replicated, not resharded).
    let cfg = RlhfConfig::tiny();
    let spec = ParallelSpec::new(1, 4, 2);
    let (pg, tg) = (1usize, 2usize);
    let gen = GenGrouping::new(spec, pg, tg, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 8),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let ctrl = traced_controller(8);
    let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build");
    let prompts = make_prompts(8, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
    ppo_iteration(&sys, &ctrl, &prompts).expect("iter");

    let gpus = 8;
    let total = ctrl.telemetry().counter("transition.to_generation.recv_bytes");
    assert!(total > 0, "the strided transition must have run");
    assert_eq!(total % gpus, 0, "every rank transfers the same volume");
    let measured_per_gpu = total / gpus;

    let model_bytes = (cfg.lm.layers * cfg.lm.block_size() * 4) as f64;
    let analytic = transition_metrics(EngineMode::HybridFlow, model_bytes, &spec, pg, tg);
    assert_eq!(
        measured_per_gpu,
        analytic.comm_volume.round() as u64,
        "measured per-GPU transition bytes must equal the Table 2 volume"
    );
    // Spot-check the absolute number so a change to either side of the
    // comparison cannot silently cancel out: (4-2)/(2·4) · 4·6176·4 B.
    assert_eq!(measured_per_gpu, 24_704);
}
