//! Offline stand-in for `serde`.
//!
//! The workspace only ever writes `use serde::{Deserialize, Serialize};`
//! plus `#[derive(Serialize, Deserialize)]` — no serializer is ever
//! invoked and no `#[serde(...)]` attributes appear. The derive macros
//! here are therefore no-ops (see `serde_derive`); the traits exist so
//! trait-bound-free code keeps compiling unchanged if a real serializer
//! is vendored later.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait produced by the no-op `#[derive(Serialize)]`.
pub trait SerializeMarker {}

/// Marker trait produced by the no-op `#[derive(Deserialize)]`.
pub trait DeserializeMarker {}
