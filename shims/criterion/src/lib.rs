//! Offline stand-in for the `criterion` crate.
//!
//! Exposes the API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!` — with a
//! simple timer in place of criterion's statistical machinery: each
//! benchmark is warmed up briefly, then measured for a fixed budget,
//! and mean/min iteration time is printed. Good enough to catch
//! order-of-magnitude regressions and to keep `cargo bench` runnable
//! offline; not a substitute for criterion's confidence intervals.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("13b_32gpu", 16)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name, parameter) }
    }

    /// Id rendered as the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean: f64,
    /// Fastest observed iteration, seconds.
    min: f64,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher { mean: 0.0, min: 0.0, iters: 0 }
    }

    /// Times `routine`, first warming up then measuring for a fixed
    /// wall-clock budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Batch so per-iteration timer overhead stays negligible for
        // sub-microsecond routines.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((1e-4 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let mut min = f64::INFINITY;
        while total < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            total += dt;
            iters += batch;
            min = min.min(dt.as_secs_f64() / batch as f64);
        }
        self.mean = total.as_secs_f64() / iters as f64;
        self.min = min;
        self.iters = iters;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{:.3} s", s)
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    if b.iters == 0 {
        println!("{:<50} (no measurement: closure never called iter)", id);
    } else {
        println!(
            "{:<50} mean {:>12}   min {:>12}   ({} iters)",
            id,
            format_seconds(b.mean),
            format_seconds(b.min),
            b.iters
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("\n== {} ==", name);
        BenchmarkGroup { _parent: self, name }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::new();
        f(&mut b, input);
        if b.iters == 0 {
            println!("{:<50} (no measurement: closure never called iter)", label);
        } else {
            println!(
                "{:<50} mean {:>12}   min {:>12}   ({} iters)",
                label,
                format_seconds(b.mean),
                format_seconds(b.min),
                b.iters
            );
        }
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_and_ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
