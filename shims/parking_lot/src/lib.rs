//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the workspace routes `parking_lot` to this shim: the same non-poisoning
//! `Mutex`/`Condvar`/`RwLock` API, implemented over `std::sync`. Poisoned
//! locks are recovered transparently (parking_lot has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII write guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let n = 4;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let pair = pair.clone();
                thread::spawn(move || {
                    let (m, cv) = &*pair;
                    let mut g = m.lock();
                    *g += 1;
                    if *g == n {
                        cv.notify_all();
                    } else {
                        while *g < n {
                            cv.wait(&mut g);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*pair.0.lock(), n);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
