//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, `prop_assert*` / `prop_assume!`,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], [`arbitrary::any`], and
//! [`collection::vec`]. Differences from upstream: cases are generated
//! from a fixed deterministic seed (no env-controlled RNG, so failures
//! always reproduce), and failing cases are reported but *not* shrunk.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while
            // still covering the small discrete config spaces used here.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a generated case did not count as a success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the message describes it.
        Fail(String),
        /// `prop_assume!` rejected the inputs; retry with fresh ones.
        Reject,
    }

    /// Deterministic RNG driving strategy generation.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for attempt number `attempt` of the test named `name`.
        /// Same (name, attempt) always yields the same stream.
        pub fn deterministic(name: &str, attempt: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, RngExt, SampleRange};
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate`
    /// draws a single concrete value.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies, built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug + 'static> Union<T> {
        /// Starts a union with one arm.
        pub fn of<S: Strategy<Value = T> + 'static>(s: S) -> Self {
            Union { arms: vec![Box::new(s)] }
        }

        /// Adds an arm.
        pub fn or<S: Strategy<Value = T> + 'static>(mut self, s: S) -> Self {
            self.arms.push(Box::new(s));
            self
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Bias 1-in-8 draws to each boundary: small discrete
                    // configs (world sizes, chunk counts) fail at the
                    // edges far more often than in the middle.
                    match rng.next_u64() & 7 {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => rng.random_range(self.clone()),
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    match rng.next_u64() & 7 {
                        0 => *self.start(),
                        1 => *self.end(),
                        _ => rng.random_range(self.clone()),
                    }
                }
            }
        )*};
    }

    int_range_strategy!(u32, u64, usize, i32, i64);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    SampleRange::sample(self.clone(), rng)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, usable via [`any`].
    pub trait Arbitrary: Debug + Sized {
        /// Draws a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain, e.g. `any::<u64>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: an exact `usize` or a
    /// `Range<usize>`.
    pub trait IntoSizeRange {
        /// Half-open `[lo, hi)` bounds on the length.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.lo + 1 >= self.hi { self.lo } else { rng.random_range(self.lo..self.hi) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.size_bounds();
        assert!(lo < hi, "empty size range for collection::vec");
        VecStrategy { element, lo, hi }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice between strategies yielding the same value type
/// (upstream's weighted form is not supported — all arms are
/// equiprobable).
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        let u = $crate::strategy::Union::of($first);
        $(let u = u.or($rest);)*
        u
    }};
}

/// Fails the current case with a message (formatted like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current inputs; the runner retries with fresh ones.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports the upstream surface this workspace
/// uses: an optional leading `#![proptest_config(expr)]` and any number
/// of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($s,)+);
            let mut __case: u32 = 0;
            let mut __attempt: u64 = 0;
            let mut __rejects: u32 = 0;
            while __case < __config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), __attempt);
                __attempt += 1;
                let __vals = $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __desc = format!("{:?}", __vals);
                let ($($p,)+) = __vals;
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __case += 1;
                        __rejects = 0;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= 1000,
                            "proptest '{}': too many inputs rejected by prop_assume! \
                             (last rejected: {})",
                            stringify!($name),
                            __desc
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            msg,
                            __desc
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 1usize..10, b in 0u32..=4, f in 0.5f32..1.0) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.5..1.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0i32..100, n))
        })) {
            let (n, items) = v;
            prop_assert_eq!(items.len(), n);
        }

        #[test]
        fn assume_retries(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (1usize..100, 0.0f64..1.0);
        let a = s.generate(&mut TestRng::deterministic("t", 3));
        let b = s.generate(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
