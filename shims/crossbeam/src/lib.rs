//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — an unbounded MPMC channel with
//! cloneable senders *and* receivers (std's `mpsc::Receiver` is neither
//! `Clone` nor MPMC, which the simulated P2P mesh relies on).

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        cv: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty;
        /// fails once the channel is empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the next value, blocking for at most `timeout`;
        /// distinguishes an elapsed deadline from disconnection.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.chan.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _res) =
                    self.chan.cv.wait_timeout(q, remaining).unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive of an already-queued value.
        pub fn try_recv(&self) -> Option<T> {
            self.chan.queue.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        /// Number of values currently queued (racy by nature: another
        /// consumer may dequeue between the probe and a `recv`).
        pub fn len(&self) -> usize {
            self.chan.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Non-blocking emptiness probe; `false` guarantees a queued
        /// value only while this is the sole consumer.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over received values, ending at disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;

    #[test]
    fn fifo_order_and_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let h = thread::spawn(move || rx2.recv().unwrap());
        tx.send(42u32).unwrap();
        let from_thread = h.join().unwrap();
        tx.send(7).unwrap();
        let local = rx.recv().unwrap();
        let mut both = vec![from_thread, local];
        both.sort();
        assert_eq!(both, vec![7, 42]);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Disconnected));
        let (tx2, rx2) = unbounded::<u32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx2.send(9).unwrap();
        });
        assert_eq!(rx2.recv_timeout(Duration::from_secs(5)), Ok(9));
        h.join().unwrap();
    }
}
