//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng`], [`Rng`] (`random`), and
//! [`RngExt`] (`random_range`) — everything this workspace uses. The
//! generator is xoshiro256++ seeded through splitmix64: high-quality,
//! fast, and fully deterministic across platforms, which is what the
//! SPMD workers rely on (all replicas of a chunk must sample
//! identically). The streams differ from upstream `rand`'s `StdRng`
//! (ChaCha12), which is fine: nothing in the workspace depends on the
//! exact upstream streams, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Types constructible from an RNG's raw 64-bit output.
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRandom for usize {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRandom for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A random-number generator.
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, irrelevant at simulation scale.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample from empty range");
                // Widen so `e - s + 1` cannot overflow (covers the full
                // u64 domain, where the span is 2^64).
                let span = ((e as i128) - (s as i128) + 1) as u128;
                let v = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                ((s as i128) + v) as $t
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u: $t = FromRandom::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods over [`Rng`] (mirrors rand 0.10's split between the
/// core trait and range sampling).
pub trait RngExt: Rng {
    /// Draws a value of type `T` (uniform over `T`'s natural domain;
    /// `[0, 1)` for floats).
    fn random<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng> RngExt for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed` (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            StdRng {
                s: [splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x), splitmix64(&mut x)],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = r.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.random_range(0u32..8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets must be reachable");
        for _ in 0..100 {
            let v = r.random_range(3usize..=5);
            assert!((3..=5).contains(&v));
        }
    }
}
