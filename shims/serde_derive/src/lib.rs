//! No-op derive macros backing the offline `serde` shim.
//!
//! Valid because the workspace never uses `#[serde(...)]` attributes and
//! never calls a serializer — the derives only need to exist, not to
//! generate impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
