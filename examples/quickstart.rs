//! Quickstart: run PPO end-to-end on the hybrid runtime.
//!
//! This is the Figure 6 experience: the whole RLHF dataflow is a short
//! single-controller script. Four tiny-but-real models (actor, critic,
//! reference, reward) are colocated on 4 simulated GPUs; the actor uses
//! a 3D-HybridEngine generation grouping; rewards genuinely improve.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hybridflow::core::WorkerLayout;
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::make_prompts;
use hybridflow::rlhf::{ppo_iteration, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

fn main() {
    // A simulated 4-GPU machine.
    let ctrl = hybridflow::core::Controller::new(ClusterSpec::a100_with_gpus(4));

    // Actor trains 1-2-2 (p-t-d) and generates 1-1-2-2 via the strided
    // zero-redundancy grouping; all models colocated on one pool.
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let pool = ResourcePool::contiguous(0, 4);
    let placement = Placement::colocated(pool, WorkerLayout::with_gen(gen), true, false);

    let cfg = RlhfConfig::tiny();
    let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("spawn RLHF system");

    println!("iter  reward  actor_loss  critic_loss  entropy  virtual_time");
    for iter in 0..12 {
        let prompts = make_prompts(16, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, iter);
        let s = ppo_iteration(&sys, &ctrl, &prompts).expect("ppo iteration");
        println!(
            "{iter:>4}  {:>6.3}  {:>10.4}  {:>11.4}  {:>7.3}  {:>10.4}s",
            s.mean_score, s.actor_loss, s.critic_loss, s.entropy, s.virtual_seconds
        );
    }
    println!("\nThe reward column should rise from ~0.125 (random over 32 tokens");
    println!("with 4 rewarded ones) toward 1.0 as PPO shifts the policy.");
}
