//! Traces one functional PPO iteration and writes a Chrome/Perfetto
//! trace (`trace.json`, load it at `ui.perfetto.dev` or in
//! `chrome://tracing`) plus a plain-text telemetry summary.
//!
//! The runtime executes on virtual clocks, so the trace is fully
//! deterministic: one track per simulated GPU plus the controller,
//! with queue-wait, execute, and communication spans in distinct
//! categories, and both HybridEngine weight transitions visible.
//!
//! ```text
//! cargo run --example trace_ppo_iteration [out.json]
//! ```

use hybridflow::core::{Controller, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::make_prompts;
use hybridflow::rlhf::{ppo_iteration, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, CommCostModel, ResourcePool};
use hybridflow::telemetry::Telemetry;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "trace.json".into());

    let cfg = RlhfConfig::tiny();
    let telemetry = Telemetry::enabled();
    let ctrl = Controller::with_telemetry(
        ClusterSpec::a100_with_gpus(4),
        CommCostModel::default(),
        telemetry.clone(),
    );
    // Actor with a HybridEngine generation grouping so both weight
    // transitions (train → generation all-gather, generation → train
    // zero-copy) appear in the trace.
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 4),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build");

    // Warm one iteration so the trace shows steady state, then record a
    // clean one.
    let prompts = make_prompts(16, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
    ppo_iteration(&sys, &ctrl, &prompts).expect("warmup");
    telemetry.clear();
    let t0 = ctrl.clock();
    let stats = ppo_iteration(&sys, &ctrl, &prompts).expect("measured iteration");

    let json = telemetry.chrome_trace();
    std::fs::write(&out_path, &json).expect("write trace");
    let spans = telemetry.spans();
    println!(
        "wrote {out_path}: {} spans on {} tracks, {:.4}s of virtual time",
        spans.len(),
        {
            let mut t: Vec<&str> = spans.iter().map(|s| s.track.as_str()).collect();
            t.sort();
            t.dedup();
            t.len()
        },
        stats.virtual_seconds,
    );
    println!("open it at ui.perfetto.dev or chrome://tracing\n");
    print!("{}", telemetry.summary_since(t0));
}
