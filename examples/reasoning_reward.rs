//! "From alignment to reasoning" (paper §9): replace the neural reward
//! model with a *non-neural reward module* — here a verifier that checks
//! whether the response continues the prompt's arithmetic pattern
//! `t_{i+1} = (t_i + 1) mod V` — wrapped as a plain closure worker and
//! orchestrated by the same single-controller script, driving GRPO.
//!
//! ```text
//! cargo run --example reasoning_reward
//! ```

use hybridflow::core::{Controller, DataProto, RankCtx, Result, Worker, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::{grpo_iteration, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

/// A rule-based verifier: rewards the fraction of response tokens that
/// repeat the prompt's final token — a prompt-*dependent* target no
/// fixed token bias can satisfy, checkable without any neural network
/// (the "sandbox / reward function" substitution §9 describes).
fn verifier() -> impl FnMut(&str, DataProto, &mut RankCtx) -> Result<DataProto> + Send {
    move |method: &str, data: DataProto, _ctx: &mut RankCtx| {
        assert_eq!(method, "compute_reward", "verifier only scores");
        let (prompts, pw) = data.tokens("prompts")?;
        let (resps, rw) = data.tokens("responses")?;
        let rows = resps.len().checked_div(rw).unwrap_or(0);
        let mut scores = Vec::with_capacity(rows);
        for r in 0..rows {
            let target = prompts[r * pw + pw - 1];
            let hits = (0..rw).filter(|&t| resps[r * rw + t] == target).count();
            scores.push(hits as f32 / rw as f32);
        }
        let mut out = DataProto::with_rows(rows);
        out.insert_f32("scores", scores, 1);
        Ok(out)
    }
}

fn main() {
    let mut cfg = RlhfConfig::tiny();
    // A smaller vocabulary and a punchier learning rate make the
    // verifiable task learnable in a demo-sized budget.
    cfg.lm = hybridflow::nn::LmConfig { vocab: 16, hidden: 32, ffn: 64, layers: 2 };
    cfg.grpo_group = 8;
    cfg.hyper.entropy_coef = 0.002;
    cfg.hyper.lr = 8e-3;

    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(4));
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let pool = ResourcePool::contiguous(0, 4);
    let placement = Placement::colocated(pool.clone(), WorkerLayout::with_gen(gen), false, false);
    let mut sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build");

    // Swap the reward model for the rule-based verifier: spawn a new
    // worker group of plain closures on the same pool and splice it in.
    let vocab = cfg.lm.vocab as u32;
    sys.reward = ctrl
        .spawn_group("verifier", &pool, WorkerLayout::train_only(spec), move |_r| {
            Box::new(verifier()) as Box<dyn Worker>
        })
        .expect("spawn verifier");

    println!("GRPO against a rule-based copy verifier (no reward network):");
    println!("iter  copy-accuracy");
    for i in 0..40u32 {
        // Prompts ending in varying target tokens.
        let mut prompts = DataProto::with_rows(8);
        let toks: Vec<u32> = (0..8u32)
            .flat_map(|row| (0..cfg.prompt_len as u32).map(move |j| (row * 5 + j * 3 + i) % vocab))
            .collect();
        prompts.insert_tokens("prompts", toks, cfg.prompt_len);
        prompts.meta.insert("response_len".into(), cfg.response_len.to_string());
        let stats = grpo_iteration(&sys, &ctrl, &prompts).expect("iteration");
        println!("{i:>4}  {:.3}", stats.mean_score);
    }
    println!("\nCopy accuracy climbs well above the 1/16 random baseline —");
    println!("the reward module is just a Rust closure registered as a worker.");
}
