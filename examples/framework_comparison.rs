//! Table 1 reproduction: the structural comparison of RLHF frameworks
//! plus an estimated one-iteration stage timeline per system.
//!
//! ```text
//! cargo run --release --example framework_comparison
//! ```

use hybridflow::baselines::{estimate, System};
use hybridflow::mapping::{AlgoKind, DataflowSpec};
use hybridflow::modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hybridflow::simcluster::ClusterSpec;

fn main() {
    println!("Table 1: RLHF framework comparison\n");
    let rows = [
        (
            "DeepSpeed-Chat",
            "ZeRO train / TP generation",
            "resharding ZeRO → TP (full-cluster all-gather)",
            "colocate all models",
        ),
        (
            "OpenRLHF",
            "ZeRO train / TP generation",
            "two actor copies, per-iteration weight sync",
            "each model standalone",
        ),
        (
            "NeMo-Aligner",
            "3D parallelism, identical in both stages",
            "shared weights, unoptimized generation engine",
            "actor+ref | critic+rm split",
        ),
        (
            "HybridFlow",
            "3D / ZeRO / FSDP train, 3D generation",
            "zero-redundancy resharding (3D-HybridEngine)",
            "any placement (auto-mapped)",
        ),
    ];
    for (name, par, weights, placement) in rows {
        println!("{name:>15} | {par:<42} | {weights:<46} | {placement}");
    }

    println!(
        "\nEstimated PPO iteration timelines (numbers 1-6 of Table 1 rendered as stage bars):"
    );
    for (model, gpus) in [(ModelConfig::llama_7b(), 16usize), (ModelConfig::llama_13b(), 32)] {
        println!("\n-- {} on {gpus} GPUs --", model.name);
        let perf = PerfModel::new(ClusterSpec::a100_with_gpus(gpus));
        let df = DataflowSpec::uniform(AlgoKind::Ppo, model.clone(), RlhfWorkload::paper());
        for sys in System::all() {
            match estimate(sys, &perf, &df, gpus) {
                Some(e) => {
                    let total = e.total();
                    let bar = |x: f64| "#".repeat(((x / total) * 30.0).round() as usize);
                    println!(
                        "{:>15}: {:7.1}s  gen[{:<30}] prep[{:<10}] train[{:<20}]",
                        sys.label(),
                        total,
                        bar(e.generation),
                        bar(e.preparation),
                        bar(e.training)
                    );
                }
                None => println!("{:>15}: OOM", sys.label()),
            }
        }
    }
}
