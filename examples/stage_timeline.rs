//! Renders one functional PPO iteration as a Table 1-style execution
//! pattern: every worker-group call on the controller's virtual-time
//! timeline, showing generation → preparation (concurrent futures) →
//! alternating critic/actor updates.
//!
//! ```text
//! cargo run --example stage_timeline
//! ```

use hybridflow::core::{Controller, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::make_prompts;
use hybridflow::rlhf::{ppo_iteration, Placement, RlhfConfig, RlhfSystem};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

fn main() {
    let cfg = RlhfConfig::tiny();
    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(4));
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 4),
        WorkerLayout::with_gen(gen),
        true,
        false,
    );
    let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build");

    // Warm one iteration, then record a clean one.
    let prompts = make_prompts(16, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, 0);
    ppo_iteration(&sys, &ctrl, &prompts).expect("warmup");
    ctrl.clear_timeline();
    let t0 = ctrl.clock();
    ppo_iteration(&sys, &ctrl, &prompts).expect("measured iteration");

    let timeline = ctrl.timeline();
    let t_end = timeline.iter().map(|e| e.completed).fold(t0, f64::max);
    let span = (t_end - t0).max(1e-12);
    println!("One PPO iteration, virtual time {:.4}s, call by call:", span);
    println!("{:<10} {:<22} {:>9} {:>9}  gantt", "group", "method", "start", "end");
    for e in &timeline {
        let width = 48.0;
        let s = (((e.dispatched - t0) / span) * width).round() as usize;
        let w = ((((e.completed - e.dispatched) / span) * width).round() as usize).max(1);
        println!(
            "{:<10} {:<22} {:>8.4}s {:>8.4}s  {}{}",
            e.group,
            e.method,
            e.dispatched - t0,
            e.completed - t0,
            " ".repeat(s.min(60)),
            "#".repeat(w.min(60)),
        );
    }
    println!("\nNote the preparation-stage calls (critic/reference/reward)");
    println!("dispatched at the same virtual instant — asynchronous dataflow");
    println!("execution; on disjoint pools their bars would overlap fully.");
}
