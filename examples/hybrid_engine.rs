//! Walk through the 3D-HybridEngine on the Figure 8 setting: 8 GPUs,
//! training layout 1-4-2, generation layout 1-2-2-2, comparing the
//! vanilla grouping (HybridFlow-V) with the paper's strided grouping —
//! group structure, transition volumes, and a byte-exact functional
//! reshard of a real tiny model's block weights.
//!
//! ```text
//! cargo run --example hybrid_engine
//! ```

use hybridflow::hybridengine::{transition_metrics, ActorShards, EngineMode};
use hybridflow::nn::{LmConfig, TinyLm};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec, ShardLayout};

fn main() {
    let spec = ParallelSpec::new(1, 4, 2); // p-t-d, Figure 8
    println!("Training layout {spec} on 8 GPUs:");
    println!("  TP groups: {:?}", spec.tp_groups());
    println!("  DP groups: {:?}", spec.dp_groups());

    for method in [GroupingMethod::Vanilla, GroupingMethod::Strided] {
        let g = GenGrouping::new(spec, 1, 2, method);
        println!("\nGeneration layout {g} with {method:?} grouping:");
        println!("  generation TP groups: {:?}", g.gen_tp_groups());
        println!("  micro-DP groups:      {:?}", g.micro_dp_groups());
    }

    println!("\nTable 2 overheads (fractions of model size M), training 1-4-2 → generation 1-2:");
    for (label, mode) in [
        ("DS-Chat", EngineMode::DsChat),
        ("HybridFlow-V", EngineMode::HybridFlowV),
        ("HybridFlow", EngineMode::HybridFlow),
    ] {
        let m = transition_metrics(mode, 1.0, &spec, 1, 2);
        println!(
            "  {label:<13} comm {:.4}M  peak {:.4}M  redundancy {:.4}M",
            m.comm_volume, m.peak_memory, m.redundancy
        );
    }

    // Functional proof on a real model: scatter TinyLm block weights into
    // training shards, reshard to generation shards, verify byte equality.
    let lm = TinyLm::new(LmConfig::tiny(), 7);
    let layout = ShardLayout::uniform(lm.cfg.layers, lm.cfg.block_size());
    let grouping = GenGrouping::new(spec, 1, 2, GroupingMethod::Strided);
    let shards = ActorShards::scatter(lm.block_region(), layout, grouping);
    let mut checked = 0;
    for rank in 0..spec.world() {
        assert_eq!(
            shards.reshard_to_gen(rank),
            shards.reference_gen_buf(rank),
            "rank {rank} reshard mismatch"
        );
        checked += shards.reference_gen_buf(rank).len();
    }
    println!(
        "\nFunctional reshard: reconstructed {} generation-shard parameters on {} ranks",
        checked,
        spec.world()
    );
    println!("byte-exact against the reference model, using only micro-DP-group data. ✓");
    for rank in [0usize, 1] {
        println!(
            "  rank {rank} gathers from ranks {:?} and receives {} bytes",
            shards.gather_group(rank),
            shards.recv_bytes(rank)
        );
    }
}
