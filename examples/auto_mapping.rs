//! Auto device mapping (paper §6): search placements, allocations, and
//! parallelism strategies for PPO with 13B models on 32 GPUs, and
//! compare the optimum against the named placements of §8.3.
//!
//! ```text
//! cargo run --release --example auto_mapping
//! ```

use hybridflow::mapping::{AlgoKind, DataflowSpec, Mapper, PlacementPlan, Role};
use hybridflow::modelspec::{ModelConfig, PerfModel, RlhfWorkload};
use hybridflow::simcluster::ClusterSpec;

fn main() {
    let gpus = 32;
    let perf = PerfModel::new(ClusterSpec::a100_with_gpus(gpus));
    let df = DataflowSpec::uniform(AlgoKind::Ppo, ModelConfig::llama_13b(), RlhfWorkload::paper());
    let mapper = Mapper::new(perf, df.clone(), gpus);

    let best = mapper.search().expect("a feasible mapping exists");
    println!("Best mapping for PPO / llama-13b on {gpus} GPUs:");
    println!("  placement: {}", best.plan.label());
    println!("  allocation: {:?} GPUs per colocated set", best.alloc);
    for (role, s) in &best.strategies {
        let gen = s
            .gen
            .map(|g| {
                format!(", generation {}-{} (max {} seqs/replica)", g.pg, g.tg, g.max_concurrent)
            })
            .unwrap_or_default();
        println!("  {role:?}: 3D layout {}{}", s.spec, gen);
    }
    println!(
        "  stages: generation {:.1}s (transition {:.2}s) | preparation {:.1}s | training {:.1}s",
        best.costs.generation, best.costs.transition, best.costs.preparation, best.costs.training
    );
    println!(
        "  iteration {:.1}s → throughput {:.0} tokens/s",
        best.costs.total(),
        best.throughput(&df)
    );
    println!("  search evaluated {} (plan, allocation) combinations", mapper.evaluations());

    println!("\nNamed placements (§8.3):");
    let roles = vec![Role::Actor, Role::Critic, Role::Reference, Role::Reward];
    for (name, plan) in [
        ("colocate (DS-Chat)", PlacementPlan::colocate(&roles)),
        ("standalone (OpenRLHF)", PlacementPlan::standalone(&roles)),
        ("split (NeMo-Aligner)", PlacementPlan::split(&roles)),
    ] {
        match mapper.evaluate_plan(&plan) {
            Some(m) => println!(
                "  {name:<22} {:>8.0} tokens/s  ({:.1}s/iter)",
                m.throughput(&df),
                m.costs.total()
            ),
            None => println!("  {name:<22} OOM"),
        }
    }
}
