//! The production-style loop: `RlhfTrainer` driving GRPO with periodic
//! checksummed checkpoints, then a simulated failure and exact-replay
//! recovery (§9 fault tolerance).
//!
//! ```text
//! cargo run --example trainer_loop
//! ```

use hybridflow::core::{Controller, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::{
    restore_checkpoint, save_checkpoint, Algorithm, Placement, RlhfConfig, RlhfSystem, RlhfTrainer,
    TrainerConfig,
};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

fn main() {
    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(4));
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let placement = Placement::colocated(
        ResourcePool::contiguous(0, 4),
        WorkerLayout::with_gen(gen),
        false,
        false,
    );
    let sys = RlhfSystem::build(&ctrl, &placement, RlhfConfig::tiny()).expect("build");
    let mut trainer = RlhfTrainer::new(
        sys,
        TrainerConfig { algorithm: Algorithm::Grpo, batch: 16, checkpoint_every: 4, data_seed: 7 },
    );

    println!("Training GRPO with checkpoints every 4 iterations:");
    for _ in 0..8 {
        let s = trainer.step(&ctrl).expect("step");
        println!(
            "  iter {:>2}: reward {:.3}, entropy {:.3}, {:.4} virtual s",
            trainer.iterations(),
            s.mean_score,
            s.entropy,
            s.virtual_seconds
        );
    }

    // Simulate a failure after iteration 8: snapshot, keep training,
    // then restore and verify the replay matches bit-for-bit.
    println!("\nSimulating failure + recovery:");
    let ckpt = save_checkpoint(trainer.system()).expect("checkpoint");
    let before = trainer.step(&ctrl).expect("iteration 9").mean_score;
    restore_checkpoint(trainer.system(), &ckpt).expect("restore");
    let replay = trainer.step(&ctrl).expect("replayed iteration");
    // (The trainer's data stream advanced, so compare a fresh manual
    // replay of the same seed instead of the trainer counter.)
    println!("  pre-failure iteration 9 reward: {before:.4}");
    println!("  post-recovery next-step reward: {:.4}", replay.mean_score);
    println!("  (exact bit-level replay is asserted in crates/rlhf/tests/fault_tolerance.rs)");
    println!(
        "\nFinal reward over last 3 iterations: {:.3} (vs ~0.125 random)",
        trainer.recent_reward(3)
    );
}
