//! The Figure 6 flexibility claim in practice: PPO, ReMax, Safe-RLHF,
//! and GRPO all run against the *same* worker groups with only
//! driver-level changes — no model-class code changes, no data-transfer
//! code at all.
//!
//! ```text
//! cargo run --example algorithm_zoo
//! ```

use hybridflow::core::{Controller, WorkerLayout};
use hybridflow::parallel::{GenGrouping, GroupingMethod, ParallelSpec};
use hybridflow::rlhf::env::{make_pretrain, make_prompts};
use hybridflow::rlhf::{
    grpo_iteration, ppo_iteration, remax_iteration, safe_rlhf_iteration, Placement, RlhfConfig,
    RlhfSystem,
};
use hybridflow::simcluster::{ClusterSpec, ResourcePool};

fn main() {
    let cfg = RlhfConfig::tiny();
    let spec = ParallelSpec::new(1, 2, 2);
    let gen = GenGrouping::new(spec, 1, 1, GroupingMethod::Strided);
    let layout = WorkerLayout::with_gen(gen);

    // Safe-RLHF needs the full five-model dataflow; PPO ignores the cost
    // model, ReMax/GRPO ignore critic and cost. One system serves all.
    let ctrl = Controller::new(ClusterSpec::a100_with_gpus(4));
    let placement = Placement::colocated(ResourcePool::contiguous(0, 4), layout, true, true);
    let sys = RlhfSystem::build(&ctrl, &placement, cfg.clone()).expect("build system");

    let iters = 8;
    println!("algorithm   first-iter reward → last-iter reward");
    for algo in ["ppo", "remax", "safe-rlhf", "grpo"] {
        let mut first = 0.0f32;
        let mut last = 0.0f32;
        for i in 0..iters {
            let prompts =
                make_prompts(16, cfg.prompt_len, cfg.response_len, cfg.lm.vocab as u32, i);
            let stats = match algo {
                "ppo" => ppo_iteration(&sys, &ctrl, &prompts).expect("ppo"),
                "remax" => remax_iteration(&sys, &ctrl, &prompts).expect("remax"),
                "grpo" => grpo_iteration(&sys, &ctrl, &prompts).expect("grpo"),
                _ => {
                    let pt = make_pretrain(
                        16,
                        cfg.prompt_len + cfg.response_len,
                        cfg.lm.vocab as u32,
                        i,
                    );
                    safe_rlhf_iteration(&sys, &ctrl, &prompts, &pt).expect("safe-rlhf")
                }
            };
            if i == 0 {
                first = stats.mean_score;
            }
            last = stats.mean_score;
        }
        println!("{algo:<10}  {first:.3} → {last:.3}");
    }
    println!("\nEach driver is a handful of worker-group calls (see");
    println!("crates/rlhf/src/algo.rs) — switching algorithms never touches");
    println!("model classes or transfer protocols.");
}
